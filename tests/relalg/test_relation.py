"""Tests for the set-semantics Relation."""

import pytest

from repro.relalg.relation import Relation


@pytest.fixture
def pairs():
    return Relation(("START_V", "END_V"), {(1, 2), (2, 3), (1, 3)})


class TestConstruction:
    def test_rows_deduplicated(self):
        relation = Relation(("A",), [(1,), (1,), (2,)])
        assert relation.cardinality == 2

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Relation(("A", "A"), set())

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Relation(("A", "B"), {(1,)})

    def test_immutability(self, pairs):
        with pytest.raises(AttributeError):
            pairs.rows = frozenset()

    def test_equality_and_hash(self, pairs):
        same = Relation(("START_V", "END_V"), {(1, 2), (2, 3), (1, 3)})
        assert pairs == same
        assert hash(pairs) == hash(same)
        assert pairs != Relation(("START_V", "END_V"), {(1, 2)})
        assert pairs.__eq__(7) is NotImplemented


class TestOperators:
    def test_select_eq(self, pairs):
        assert pairs.select_eq("START_V", 1).rows == {(1, 2), (1, 3)}

    def test_select_predicate(self, pairs):
        result = pairs.select(lambda row: row["END_V"] - row["START_V"] == 1)
        assert result.rows == {(1, 2), (2, 3)}

    def test_select_unknown_column(self, pairs):
        with pytest.raises(KeyError):
            pairs.select_eq("NOPE", 1)

    def test_project_dedupes(self, pairs):
        assert pairs.project(("START_V",)).rows == {(1,), (2,)}

    def test_project_reorders(self, pairs):
        flipped = pairs.project(("END_V", "START_V"))
        assert flipped.columns == ("END_V", "START_V")
        assert (2, 1) in flipped.rows

    def test_rename(self, pairs):
        renamed = pairs.rename({"START_V": "S"})
        assert renamed.columns == ("S", "END_V")
        assert renamed.rows == pairs.rows

    def test_union(self, pairs):
        other = Relation(("START_V", "END_V"), {(9, 9)})
        assert pairs.union(other).cardinality == 4

    def test_union_schema_mismatch(self, pairs):
        with pytest.raises(ValueError):
            pairs.union(Relation(("X", "Y"), set()))

    def test_join_basic(self, pairs):
        other = Relation(("SRC", "DST"), {(2, 10), (3, 11)})
        joined = pairs.join(other, "END_V", "SRC")
        assert joined.columns == ("START_V", "END_V", "SRC", "DST")
        assert (1, 2, 2, 10) in joined.rows
        assert (2, 3, 3, 11) in joined.rows

    def test_join_suffixes_colliding_columns(self, pairs):
        joined = pairs.join(pairs, "END_V", "START_V")
        assert joined.columns == (
            "START_V", "END_V", "START_V_r", "END_V_r",
        )
        # Transitive 2-step pairs: 1->2->3.
        assert (1, 2, 2, 3) in joined.rows

    def test_join_no_matches(self, pairs):
        other = Relation(("SRC", "DST"), {(99, 1)})
        assert pairs.join(other, "END_V", "SRC").cardinality == 0


class TestConversions:
    def test_from_pairs_default_columns(self):
        relation = Relation.from_pairs({(1, 2)})
        assert relation.columns == ("START_V", "END_V")

    def test_to_pairs(self, pairs):
        assert pairs.to_pairs() == {(1, 2), (2, 3), (1, 3)}

    def test_to_pairs_requires_binary(self):
        with pytest.raises(ValueError):
            Relation(("A",), {(1,)}).to_pairs()

    def test_iteration_and_len(self, pairs):
        assert len(pairs) == 3
        assert set(iter(pairs)) == pairs.rows
