"""Tests for the relational-algebra expression tree."""

from repro.relalg.expression import Join, Project, Rename, Scan, Select, Union
from repro.relalg.relation import Relation


def scan(rows, columns=("A", "B"), label="R"):
    return Scan(Relation(columns, rows), label)


class TestEvaluation:
    def test_scan(self):
        relation = scan({(1, 2)}).evaluate()
        assert relation.rows == {(1, 2)}

    def test_select(self):
        expression = Select(scan({(1, 2), (3, 4)}), "A", 1)
        assert expression.evaluate().rows == {(1, 2)}

    def test_project(self):
        expression = Project(scan({(1, 2), (3, 2)}), ("B",))
        assert expression.evaluate().rows == {(2,)}

    def test_rename(self):
        expression = Rename(scan({(1, 2)}), (("A", "X"),))
        assert expression.evaluate().columns == ("X", "B")

    def test_join(self):
        left = scan({(1, 2)}, ("A", "B"))
        right = scan({(2, 3)}, ("C", "D"), "S")
        expression = Join(left, right, "B", "C")
        assert expression.evaluate().rows == {(1, 2, 2, 3)}

    def test_union(self):
        expression = Union(scan({(1, 2)}), scan({(3, 4)}))
        assert expression.evaluate().rows == {(1, 2), (3, 4)}

    def test_composition(self):
        # pi_A(sigma_B=2(R ⋈ S))
        left = scan({(1, 2), (5, 9)}, ("A", "B"))
        right = scan({(2, 7), (9, 8)}, ("C", "D"), "S")
        expression = Project(
            Select(Join(left, right, "B", "C"), "B", 2), ("A",)
        )
        assert expression.evaluate().rows == {(1,)}


class TestPrinting:
    def test_to_algebra_nested(self):
        expression = Project(
            Join(scan({(1, 2)}), scan({(2, 3)}, ("C", "D"), "S"), "B", "C"),
            ("A", "D"),
        )
        text = expression.to_algebra()
        assert text == "π[A, D]((R ⋈[B=C] S))"
        assert str(expression) == text

    def test_rename_and_select_printing(self):
        expression = Select(Rename(scan({(1, 2)}), (("A", "X"),)), "X", 1)
        assert "ρ[A→X]" in expression.to_algebra()
        assert "σ[X=1]" in expression.to_algebra()

    def test_union_printing(self):
        expression = Union(scan(set()), scan(set()))
        assert "∪" in expression.to_algebra()
