"""Tests for the benchmark harness (measurement + equality gate)."""

import pytest

from repro.bench.experiments import dataset_statistics, sharing_statistics
from repro.bench.formatting import banner, format_ratio, format_seconds, format_table
from repro.bench.harness import METHODS, run_rpq_set, run_workload
from repro.workloads.generator import generate_workload


class TestRunRpqSet:
    def test_measures_all_methods(self, fig1):
        measurement = run_rpq_set(fig1, ["d.(b.c)+.c", "a.(b.c)+"])
        assert set(measurement.per_method) == set(METHODS)
        for record in measurement.per_method.values():
            assert record.total_time > 0
            assert record.result_pairs >= 0

    def test_equality_gate_passes_on_consistent_engines(self, fig1):
        measurement = run_rpq_set(fig1, ["(b.c)+", "(b.c)*"])
        rtc = measurement.per_method["RTC"]
        full = measurement.per_method["Full"]
        assert rtc.result_pairs == full.result_pairs

    def test_shared_sizes(self, fig1):
        measurement = run_rpq_set(fig1, ["d.(b.c)+.c"])
        assert measurement.per_method["No"].shared_pairs == 0
        assert measurement.per_method["Full"].shared_pairs == 10
        assert measurement.per_method["RTC"].shared_pairs == 3

    def test_ratio_helper(self, fig1):
        measurement = run_rpq_set(fig1, ["d.(b.c)+.c"])
        assert measurement.ratio("Full") == pytest.approx(
            measurement.per_method["Full"].total_time
            / measurement.per_method["RTC"].total_time
        )

    def test_counters_collection(self, fig1):
        measurement = run_rpq_set(
            fig1, ["d.(b.c)+.c"], collect_counters=True
        )
        assert measurement.per_method["RTC"].counters
        assert measurement.per_method["Full"].counters

    def test_method_subset(self, fig1):
        measurement = run_rpq_set(fig1, ["(b.c)+"], methods=("RTC",))
        assert list(measurement.per_method) == ["RTC"]


class TestRunWorkload:
    def test_averaging(self, fig1):
        workload = generate_workload(fig1, num_sets=2, max_rpqs=2, seed=0)
        result = run_workload(fig1, [s.subset(2) for s in workload])
        assert result.num_sets == 2
        assert result.num_rpqs == 2
        for method in METHODS:
            assert result.mean_total[method] > 0

    def test_empty_workload_rejected(self, fig1):
        with pytest.raises(ValueError):
            run_workload(fig1, [])


class TestExperimentHelpers:
    def test_dataset_statistics(self, fig1):
        row = dataset_statistics(fig1, "fig1")
        assert row["num_vertices"] == 10
        assert row["num_edges"] == 16
        assert row["num_labels"] == 6
        assert row["degree"] == pytest.approx(16 / 60)

    def test_sharing_statistics(self, fig1):
        rows = sharing_statistics(fig1, "fig1", num_sets=2, seed=0)
        assert len(rows) == 2
        for row in rows:
            assert row["rtc_pairs"] <= row["full_pairs"] or row["full_pairs"] == 0
            assert row["condensed_vertices"] <= row["gr_vertices"]


class TestFormatting:
    def test_format_seconds_scales(self):
        assert format_seconds(0.0000005).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.5) == "2.500s"

    def test_format_ratio(self):
        assert format_ratio(2.0) == "2.00x"
        assert format_ratio(float("inf")) == "inf"

    def test_format_table_alignment(self):
        table = format_table(["name", "n"], [["abc", 1], ["x", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_banner(self):
        assert "Results" in banner("Results")
