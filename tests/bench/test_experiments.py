"""Tests for the experiment drivers (tiny scales; correctness not speed)."""

import pytest

from repro.bench.experiments import (
    DEFAULT_FRACTIONS,
    experiment1_real,
    experiment1_synthetic,
    experiment2,
)
from repro.datasets.rmat import rmat_n


class TestExperiment1Synthetic:
    def test_row_schema(self):
        rows = experiment1_synthetic(
            degree_exponents=(0, 1), scale=6, num_rpqs=2, num_sets=1, seed=0
        )
        assert [row["dataset"] for row in rows] == ["RMAT_0", "RMAT_1"]
        for row in rows:
            for method in ("No", "Full", "RTC"):
                assert row[f"total_{method}"] > 0
                assert row[f"shared_data_{method}"] >= 0
                assert row[f"remainder_{method}"] >= 0
            assert row["num_rpqs"] == 2

    def test_degrees_match_exponents(self):
        rows = experiment1_synthetic(
            degree_exponents=(0, 2), scale=6, num_rpqs=1, num_sets=1, seed=0
        )
        assert rows[0]["degree"] == pytest.approx(0.25)
        assert rows[1]["degree"] == pytest.approx(1.0)


class TestExperiment1Real:
    def test_tiny_fractions(self):
        rows = experiment1_real(
            datasets=("robots", "youtube"),
            num_rpqs=1,
            num_sets=1,
            seed=0,
            fractions={"robots": 1 / 8, "youtube": 1 / 20},
        )
        by_name = {row["dataset"]: row for row in rows}
        assert by_name["robots"]["degree"] == pytest.approx(0.52, rel=0.2)
        assert by_name["youtube"]["degree"] == pytest.approx(11.42, rel=0.2)

    def test_default_fractions_exposed(self):
        assert DEFAULT_FRACTIONS["yago2s"] < 1 / 100
        assert 0 < DEFAULT_FRACTIONS["advogato"] <= 1


class TestExperiment2:
    def test_set_size_sweep(self):
        graph = rmat_n(1, scale=6, seed=1)
        rows = experiment2(
            graph, "tiny", set_sizes=(1, 2), num_sets=1, seed=0
        )
        assert [row["num_rpqs"] for row in rows] == [1, 2]
        # More RPQs means at least as much NoSharing work.
        assert rows[1]["total_No"] >= rows[0]["total_No"] * 0.5
        for row in rows:
            assert row["dataset"] == "tiny"
