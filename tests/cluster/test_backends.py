"""Shard backends: the thread/process identity gate and worker lifecycle.

The headline satellite test: the *same* multi-component workload -- with
a streaming update in the middle -- answered by (a) a process-backend
cluster, (b) an in-process (thread) cluster, and (c) a sequential
``execute_many`` over one session must produce identical pair-sets.
Transport must be invisible in the results.
"""

from functools import partial

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterRouter,
    GraphCluster,
    InProcessBackend,
    ProcessBackend,
)
from repro.db import GraphDB
from repro.errors import AdmissionError, GraphFormatError, ServerError
from repro.graph.io import dump_edge_list, load_edge_list
from repro.server import Client, ServerConfig, ServerThread

from test_cluster import QUERIES

#: The mid-workload update: a fresh edge inside component "1"'s shard.
MID_UPDATE = ("1:1", "b", "1:777")


def run_workload_with_update(answer, update):
    """First half of QUERIES, the update, second half; -> {query: pairs}.

    ``answer(query) -> set`` and ``update()`` abstract over the three
    deployments under test.
    """
    half = len(QUERIES) // 2
    results = {}
    for query in QUERIES[:half]:
        results[query] = answer(query)
    update()
    # Re-ask one early query too: the update must be visible everywhere.
    for query in QUERIES[half:] + QUERIES[:1]:
        results[f"post:{query}"] = answer(query)
    return results


def session_reference(graph):
    """The single-session ground truth for the same workload."""
    db = GraphDB.open(graph.copy())

    def answer(query):
        return set(db.execute(query))

    def update():
        db.update(add=[MID_UPDATE])

    return run_workload_with_update(answer, update)


def cluster_workload(graph, backend):
    cluster = GraphCluster.open(
        graph.copy(),
        config=ClusterConfig(
            shards=2, replicas=2, workers=1, backend=backend
        ),
        start=False,
    )
    router = ClusterRouter(cluster, ServerConfig(batch_window=0.002))
    with ServerThread(router) as handle:
        with Client(*handle.address) as client:

            def answer(query):
                return client.query(query).pairs

            def update():
                client.update(add=[MID_UPDATE])

            return run_workload_with_update(answer, update)


class TestBackendIdentity:
    def test_process_vs_thread_vs_session(self, multi_fig1):
        """The satellite gate: three deployments, one answer set."""
        expected = session_reference(multi_fig1)
        thread_results = cluster_workload(multi_fig1, "thread")
        process_results = cluster_workload(multi_fig1, "process")
        assert thread_results == expected
        assert process_results == expected

    def test_direct_backend_identity(self, multi_fig1):
        """InProcessBackend vs ProcessBackend over one whole-graph shard."""
        session = GraphDB.open(multi_fig1.copy())
        in_process = InProcessBackend(
            0, multi_fig1.copy(), replicas=2, workers=1, start=True
        )
        process = ProcessBackend(
            0, multi_fig1.copy(), replicas=2, workers=1, start=True
        )
        try:
            for query in QUERIES:
                expected = set(session.execute(query))
                thread_pairs, _ = in_process.query(query).result(timeout=30)
                process_pairs, _ = process.query(query).result(timeout=60)
                assert thread_pairs == expected, query
                assert process_pairs == expected, query
        finally:
            in_process.close()
            process.close()


class TestCountsOnlyFanOut:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_counts_match_pairs_across_shards(self, multi_fig1, backend):
        """pairs=False answers: per-shard counts sum to the union size."""
        cluster = GraphCluster.open(
            multi_fig1,
            config=ClusterConfig(
                shards=2, replicas=2, workers=1, backend=backend
            ),
            start=False,
        )
        with ServerThread(ClusterRouter(cluster)) as handle:
            with Client(*handle.address) as client:
                for query in QUERIES[:4] + ["(b.c)*"]:
                    full = client.query(query, pairs=True)
                    counted = client.query(query, pairs=False)
                    assert counted.pairs is None
                    assert counted.count == len(full.pairs), query

    def test_direct_counts_only_submit(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=2, workers=1)
        )
        try:
            pairs, _ = cluster.submit("b.c").result(timeout=30)
            count, _ = cluster.submit("b.c", want_pairs=False).result(timeout=30)
            assert count == len(pairs)
            assert isinstance(count, int)
        finally:
            cluster.stop()


class TestProcessBackendLifecycle:
    def test_worker_dies_cleanly_on_close(self, multi_fig1):
        backend = ProcessBackend(0, multi_fig1, workers=1, start=True)
        process = backend._process
        assert process.is_alive()
        backend.query("b.c").result(timeout=60)
        backend.drain()
        backend.close()
        # close() sends SIGTERM; the worker's graceful shutdown path
        # exits 0 -- a kill would show a negative exit code.
        assert process.exitcode == 0

    def test_stats_document_shape(self, multi_fig1):
        backend = ProcessBackend(0, multi_fig1, replicas=2, workers=1, start=True)
        try:
            backend.query("b.c").result(timeout=60)
            doc = backend.stats()
            assert doc["backend"] == "process"
            assert doc["worker"]["pid"] == backend.pid
            assert doc["graph"]["edges"] == multi_fig1.num_edges
            assert [r["replica"] for r in doc["replicas"]] == [0, 1]
            assert sum(
                r["scheduler"]["completed"] for r in doc["replicas"]
            ) == 1
            assert isinstance(doc["latency_values"], list)
        finally:
            backend.close()

    def test_local_admission_bound(self, multi_fig1):
        backend = ProcessBackend(0, multi_fig1, workers=1, start=False)
        backend._max_pending = 0  # force the local bound
        backend.start()
        backend.wait_ready()
        try:
            with pytest.raises(AdmissionError):
                backend.query("b.c")
        finally:
            backend.close()

    def test_update_converges_and_edge_estimate_tracks(self, multi_fig1):
        backend = ProcessBackend(0, multi_fig1, replicas=2, workers=1, start=True)
        try:
            before = backend.edge_count()
            backend.update(add=[("0:1", "b", "0:555")]).result(timeout=60)
            backend.drain()
            assert backend.edge_count() == before + 1
            pairs, _ = backend.query("b").result(timeout=60)
            assert ("0:1", "0:555") in pairs
        finally:
            backend.close()

    def test_closed_backend_refuses_queries(self, multi_fig1):
        backend = ProcessBackend(0, multi_fig1, workers=1, start=True)
        backend.close()
        with pytest.raises(ServerError) as excinfo:
            backend.query("b.c")
        assert excinfo.value.code == "closed"
        backend.close()  # idempotent


class TestGraphShipping:
    def test_int_lookalike_vertices_refuse_to_dump(self, tmp_path):
        from repro.graph.multigraph import LabeledMultigraph

        graph = LabeledMultigraph.from_edges([("123", "a", "456")])
        backend = ProcessBackend(0, graph, workers=1)
        with pytest.raises(GraphFormatError, match="looks like an integer"):
            backend.start()
        backend.close()

    def test_loader_callable_ships_any_graph(self, multi_fig1, tmp_path):
        """A picklable loader bypasses the edge-list dump entirely."""
        path = tmp_path / "shard.edges"
        dump_edge_list(multi_fig1, path)
        backend = ProcessBackend(
            0,
            None,
            workers=1,
            loader=partial(load_edge_list, str(path)),
            start=True,
        )
        try:
            session = GraphDB.open(multi_fig1)
            pairs, _ = backend.query("d.(b.c)+.c").result(timeout=60)
            assert pairs == set(session.execute("d.(b.c)+.c"))
        finally:
            backend.close()

    def test_isolated_vertices_survive_the_dump(self):
        """Edge lists carry no degree-0 vertices; the spec ships them."""
        from repro.graph.multigraph import LabeledMultigraph

        graph = LabeledMultigraph.from_edges([("a", "x", "b")])
        graph.add_vertex("lonely")
        backend = ProcessBackend(0, graph, workers=1, start=True)
        try:
            # A nullable query contributes (v, v) for *every* vertex,
            # isolated ones included.
            pairs, _ = backend.query("x*").result(timeout=60)
            assert ("lonely", "lonely") in pairs
        finally:
            backend.close()


class TestWorkerLogging:
    def test_worker_logs_to_file(self, multi_fig1, tmp_path):
        cluster = GraphCluster.open(
            multi_fig1,
            config=ClusterConfig(
                shards=2,
                workers=1,
                backend="process",
                worker_log_dir=tmp_path / "logs",
            ),
        )
        try:
            pairs, _ = cluster.submit("b.c").result(timeout=60)
            assert pairs
        finally:
            cluster.stop()
        for shard in range(2):
            log = (tmp_path / "logs" / f"shard{shard}.log").read_text()
            assert f"serving shard {shard}" in log
            assert "shut down cleanly" in log

    def test_env_log_dir_fallback(self, multi_fig1, tmp_path, monkeypatch):
        """REPRO_CLUSTER_LOG_DIR captures workers without explicit config
        (the CI artifact hook)."""
        monkeypatch.setenv("REPRO_CLUSTER_LOG_DIR", str(tmp_path / "ci-logs"))
        backend = ProcessBackend(3, multi_fig1, workers=1, start=True)
        backend.close()
        logs = list((tmp_path / "ci-logs").glob("shard3-*.log"))
        assert len(logs) == 1
        assert "shut down cleanly" in logs[0].read_text()
