"""Cluster stress: exactness under concurrency (the acceptance gate).

The headline criterion: a 4-shard x 2-replica cluster serves the same
closure-sharing stress workload as the single-node suite
(:mod:`tests.server.test_stress`) and every client's answers are
*identical* to a sequential ``execute_many`` on one session over the
unpartitioned graph -- sharding, replication, routing, pruning and
merging must be invisible in the results.  A second gate interleaves
writers and readers and checks the final converged state on every
replica.
"""

import threading

from repro.cluster import ClusterConfig, ClusterRouter, GraphCluster
from repro.db import GraphDB
from repro.server import Client, ServerConfig, ServerThread

from test_cluster import QUERIES


def run_clients(address, num_clients: int, queries_per_client):
    results: list[dict | None] = [None] * num_clients
    errors: list[BaseException] = []

    def worker(index: int) -> None:
        try:
            with Client(*address) as client:
                mine = {}
                for query in queries_per_client(index):
                    mine[query] = client.query(query).pairs
                results[index] = mine
        except BaseException as error:  # noqa: BLE001 -- re-raised below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    if errors:
        raise errors[0]
    assert all(result is not None for result in results), "a client hung"
    return results


class TestClusterExactness:
    def test_4x2_cluster_matches_execute_many(self, multi_fig1):
        """The acceptance gate: 4 shards x 2 replicas == one session."""
        cluster = GraphCluster.open(
            multi_fig1,
            config=ClusterConfig(shards=4, replicas=2, workers=2),
            start=False,
        )
        router = ClusterRouter(cluster, ServerConfig(batch_window=0.002))
        with ServerThread(router) as handle:
            served = run_clients(handle.address, 8, lambda index: QUERIES)
        expected = {
            query: set(result)
            for query, result in zip(
                QUERIES, GraphDB.open(multi_fig1).execute_many(QUERIES)
            )
        }
        for client_results in served:
            assert client_results == expected

    def test_interleaved_disjoint_workloads(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=4, replicas=2, workers=1),
            start=False,
        )
        with ServerThread(ClusterRouter(cluster)) as handle:
            served = run_clients(
                handle.address, 6, lambda index: QUERIES[index % 3 :: 3]
            )
        session = GraphDB.open(multi_fig1)
        expected = {query: set(session.execute(query)) for query in QUERIES}
        for client_results in served:
            for query, pairs in client_results.items():
                assert pairs == expected[query], query


class TestClusterUnderWrites:
    def test_concurrent_updates_and_queries_converge(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1,
            config=ClusterConfig(shards=4, replicas=2, workers=2),
            start=False,
        )
        new_edges = [(f"{i % 4}:1", "b", f"{i % 4}:{200 + i}") for i in range(12)]
        with ServerThread(ClusterRouter(cluster)) as handle:
            reader_stop = threading.Event()
            reader_errors: list[BaseException] = []

            def reader() -> None:
                try:
                    with Client(*handle.address) as client:
                        while not reader_stop.is_set():
                            client.query("(b.c)+", pairs=False)
                except BaseException as error:  # noqa: BLE001
                    reader_errors.append(error)

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            with Client(*handle.address) as writer:
                for edge in new_edges:
                    writer.update(add=[edge])
            reader_stop.set()
            for thread in threads:
                thread.join(timeout=60)
            with Client(*handle.address) as client:
                final = client.query("(b.c)+").pairs

        assert not reader_errors
        # Every replica of every shard converged to the same graph.
        merged_edges = set()
        for shard in range(4):
            reference = set(cluster.replica(shard, 0).db.graph.edges())
            for replica in range(1, 2):
                assert (
                    set(cluster.replica(shard, replica).db.graph.edges())
                    == reference
                )
            merged_edges |= reference
        expected_graph = multi_fig1.copy()
        for source, label, target in new_edges:
            expected_graph.add_edge(source, label, target)
        assert merged_edges == set(expected_graph.edges())
        assert final == set(GraphDB.open(expected_graph).execute("(b.c)+"))

    def test_update_storm_leaves_books_balanced(self, multi_fig1):
        """After a mixed storm drains, the aggregate accounting closes."""
        cluster = GraphCluster.open(
            multi_fig1,
            config=ClusterConfig(shards=4, replicas=2, workers=1),
            start=False,
        )
        with ServerThread(ClusterRouter(cluster)) as handle:

            def mixed(index: int):
                if index % 2:
                    return QUERIES
                return QUERIES[:3]

            run_clients(handle.address, 8, mixed)
            with Client(*handle.address) as writer:
                for i in range(8):
                    writer.update(add=[(f"{i % 4}:1", "f", f"{i % 4}:{300 + i}")])
                stats = writer.stats()["scheduler"]
        assert stats["in_flight"] == 0
        assert stats["admitted"] == (
            stats["completed"]
            + stats["expired"]
            + stats["failed"]
            + stats["cancelled"]
            + stats["updates"]
        )
