"""Crash durability gates: kill -9, restart from disk, answer identity.

The storage subsystem's cluster-level oracle: a process-backend cluster
whose workers are SIGKILLed *after* updates were acked must, restarted
over the same data directory, answer the full workload identically to a
single unbroken ``GraphDB`` session that applied the same updates.  A
checkpointed thread cluster must come back *warm* -- cached closures
served without recompute.
"""

import os
import re
import shutil
import signal
from pathlib import Path

import pytest

from repro.cluster import ClusterConfig, ClusterRouter, GraphCluster, partition_graph
from repro.db import GraphDB
from repro.errors import ClusterError
from repro.server import Client, ServerConfig, ServerThread
from test_crossshard import QUERIES, pick_cross_shard_edge, single_component_rmat

#: Fig. 1's Example 2 query -- a closure body the RTC store persists.
CLOSURE_QUERY = "d.(b.c)+.c"


@pytest.fixture
def data_dir(tmp_path, request):
    """A durable data directory; ``REPRO_DURABILITY_DATA_DIR`` redirects
    it so CI can upload the WAL/manifest state as an artifact when the
    gate fails."""
    root = os.environ.get("REPRO_DURABILITY_DATA_DIR")
    if not root:
        return tmp_path / "data"
    path = Path(root) / re.sub(r"[^A-Za-z0-9_.-]+", "-", request.node.name)
    if path.exists():
        shutil.rmtree(path)
    path.mkdir(parents=True)
    return path


def pick_same_shard_edge(graph, partition, label="l2"):
    """The first (by string order) absent edge living inside one shard."""
    vertices = sorted(graph.vertices(), key=str)
    for source in vertices:
        for target in vertices:
            if source == target:
                continue
            if partition.shard_of(source) != partition.shard_of(target):
                continue
            if not graph.has_edge(source, label, target):
                return (source, label, target)
    raise AssertionError("no same-shard edge candidate found")


def reference_answers(graph, update_edges):
    """Ground truth: one unbroken session that applied the same updates."""
    db = GraphDB.open(graph.copy())
    for edge in update_edges:
        db.update(add=[edge])
    return {query: set(db.execute(query)) for query in QUERIES}


class TestKillNineRestart:
    def test_restart_matches_unbroken_session(self, data_dir):
        """The acceptance gate: SIGKILL both workers after acked updates,
        restart over the same data directory, identical answers."""
        graph = single_component_rmat()
        config = ClusterConfig(
            shards=2, workers=1, backend="process", data_dir=data_dir
        )
        cluster = GraphCluster(
            partition_graph(graph.copy(), 2, strategy="edge-cut"),
            config=config,
        )
        try:
            # One acked update of each routing kind: same-shard, a cut
            # edge crossing shards, and a brand-new vertex the router
            # must re-assign identically on replay.
            cut_edge = pick_cross_shard_edge(graph, cluster.partition)
            same_edge = pick_same_shard_edge(graph, cluster.partition)
            new_edge = ("fresh-vertex", "l0", sorted(graph.vertices(), key=str)[0])
            updates = [same_edge, cut_edge, new_edge]

            for query in QUERIES[:3]:  # mid-workload: traffic, then crash
                cluster.submit(query).result(timeout=120)
            for edge in updates:
                cluster.submit_update(add=[edge]).result(timeout=120)

            for shard in range(2):
                os.kill(cluster.backend(shard).pid, signal.SIGKILL)
        finally:
            cluster.stop()

        expected = reference_answers(graph, updates)
        restarted = GraphCluster(
            partition_graph(graph.copy(), 2, strategy="edge-cut"),
            config=config,
        )
        try:
            assert restarted.partition.has_cut(*cut_edge)
            for query in QUERIES:
                pairs, _elapsed = restarted.submit(query).result(timeout=120)
                assert pairs == expected[query], query
        finally:
            restarted.stop()


class TestWarmRestart:
    def test_checkpointed_cluster_comes_back_hot(self, multi_fig1, data_dir):
        """Restarted shards serve the checkpointed closure from the RTC
        store -- cache hits, no recompute."""
        config = ClusterConfig(shards=2, workers=1, data_dir=data_dir)
        cluster = GraphCluster(
            partition_graph(multi_fig1.copy(), 2), config=config
        )
        try:
            before, _ = cluster.submit(CLOSURE_QUERY).result(timeout=120)
            infos = cluster.checkpoint()
            assert len(infos) == 2
        finally:
            cluster.stop()

        restarted = GraphCluster(
            partition_graph(multi_fig1.copy(), 2), config=config
        )
        try:
            document = restarted.describe()
            storage_docs = [
                entry["storage"] for entry in document["per_shard"]
            ]
            assert all(doc["recovered"] for doc in storage_docs)
            assert sum(doc["warm"]["entries"] for doc in storage_docs) >= 2
            assert document["storage"]["data_dir"] == str(data_dir)

            caches = [
                restarted.backend(shard).replicas[0].db.engine.rtc_cache.stats
                for shard in range(2)
            ]
            misses = [cache.misses for cache in caches]
            hits = sum(cache.hits for cache in caches)
            after, _ = restarted.submit(CLOSURE_QUERY).result(timeout=120)
            assert after == before
            assert [cache.misses for cache in caches] == misses  # no recompute
            assert sum(cache.hits for cache in caches) > hits
        finally:
            restarted.stop()

    def test_checkpoint_without_data_dir_is_unsupported(self, multi_fig1):
        cluster = GraphCluster(
            partition_graph(multi_fig1.copy(), 2),
            config=ClusterConfig(shards=2, workers=1),
        )
        try:
            with pytest.raises(ClusterError, match="no storage"):
                cluster.checkpoint()
        finally:
            cluster.stop()


class TestCheckpointVerb:
    def test_checkpoint_over_the_wire(self, multi_fig1, data_dir):
        """The router's ``checkpoint`` verb fans out and reports LSNs."""
        cluster = GraphCluster(
            partition_graph(multi_fig1.copy(), 2),
            config=ClusterConfig(shards=2, workers=1, data_dir=data_dir),
            start=False,
        )
        router = ClusterRouter(cluster, ServerConfig(batch_window=0.002))
        with ServerThread(router) as handle:
            with Client(*handle.address) as client:
                client.update(add=[["0:v7", "d", "0:v2"]])
                response = client.call("checkpoint")
                infos = response["checkpoint"]
                assert len(infos) == 2
                assert all("lsn" in info for info in infos)
                assert max(info["lsn"] for info in infos) >= 1
