"""Cluster-wide observability: cross-process trace assembly through the
router, pooled latency percentiles, join-round tracing, and the worker
``metrics`` path."""

import json
import socket

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterRouter,
    GraphCluster,
    partition_graph,
)
from repro.cluster.backends import aggregate_scheduler_stats
from repro.graph.multigraph import LabeledMultigraph
from repro.obs import build_tree, parse_prometheus
from repro.server import Client, ServerConfig, ServerThread
from repro.server.metrics import percentile


def _disjoint_chains(copies: int = 8) -> LabeledMultigraph:
    """``copies`` disjoint a->b->c chains; partitions cleanly across shards."""
    graph = LabeledMultigraph()
    for index in range(copies):
        graph.add_edge(f"a{index}", "b", f"c{index}")
        graph.add_edge(f"c{index}", "c", f"d{index}")
    return graph


@pytest.fixture(scope="module")
def process_router():
    """A 2-shard process-backend cluster behind a live ClusterRouter."""
    cluster = GraphCluster.open(
        _disjoint_chains(),
        config=ClusterConfig(shards=2, workers=1, backend="process"),
    )
    router = ClusterRouter(cluster, ServerConfig(batch_window=0.002))
    with ServerThread(router) as handle:
        with Client(*handle.address) as client:
            yield cluster, handle, client
    cluster.stop()


def _raw_roundtrip(address, payload: dict) -> bytes:
    with socket.create_connection(address, timeout=30) as sock:
        sock.sendall(json.dumps(payload).encode() + b"\n")
        data = b""
        while not data.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    return data


class TestPooledPercentiles:
    """Cluster-wide latency quantiles must come from pooled reservoirs,
    not from averaging per-replica percentiles."""

    @staticmethod
    def _stats_doc(qps=1.0, batches=1, mean_batch=1.0):
        doc = {
            key: 0
            for key in (
                "admitted",
                "rejected",
                "expired",
                "failed",
                "cancelled",
                "completed",
                "updates",
                "in_flight",
                "batches",
                "queue_depth",
                "workers",
            )
        }
        doc.update(
            uptime=10.0,
            qps=qps,
            batches=batches,
            mean_batch_size=mean_batch,
            max_batch_size=2,
        )
        return doc

    def test_uneven_reservoirs_pool_correctly(self):
        # One replica saw 1 slow request, the other 99 fast ones.  An
        # average-of-percentiles would report ~0.5s at p50; the pooled
        # truth is the 50th value of the merged reservoir.
        slow = [1.0]
        fast = [0.001 * (i + 1) for i in range(99)]
        pooled = slow + fast
        aggregate = aggregate_scheduler_stats(
            [self._stats_doc(), self._stats_doc()], pooled
        )
        latency = aggregate["latency"]
        assert latency["window"] == 100
        for quantile, key in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
            assert latency[key] == percentile(pooled, quantile)
        assert latency["p50"] < 0.1  # the average-of-percentiles trap
        assert latency["mean"] == pytest.approx(sum(pooled) / 100)

    def test_permutation_invariance(self):
        # Pooling is order-free: shuffling which replica held which
        # values cannot move any quantile.
        lat_a = [0.002, 0.4, 0.009]
        lat_b = [0.001] * 10
        docs = [self._stats_doc(), self._stats_doc()]
        one = aggregate_scheduler_stats(docs, lat_a + lat_b)
        other = aggregate_scheduler_stats(docs, lat_b + lat_a)
        assert one["latency"] == other["latency"]

    def test_empty_cluster_reports_nulls(self):
        latency = aggregate_scheduler_stats([], [])["latency"]
        assert latency == {
            "window": 0,
            "mean": None,
            "p50": None,
            "p95": None,
            "p99": None,
        }


class TestTracePropagation:
    """Satellite 3 + the tentpole acceptance gate: one assembled trace
    tree spanning router and both process-backend workers."""

    def test_single_tree_across_processes(self, process_router):
        _, _, client = process_router
        result, trace = client.query_traced("b.c")
        assert result.count == 8
        spans = trace["spans"]
        # Parent ids are intact: every non-root parent resolves inside
        # the same trace, and the forest collapses to one root.
        ids = {span["id"] for span in spans}
        orphans = [
            span
            for span in spans
            if span.get("parent") and span["parent"] not in ids
        ]
        assert orphans == []
        roots = build_tree(trace)
        assert len(roots) == 1
        assert roots[0]["name"] == "request"
        # Three processes contributed spans: router + two shard workers
        # (span ids are pid-prefixed).
        pids = {span["id"].split("-")[0] for span in spans}
        assert len(pids) >= 3
        # At least five distinct phase span types, including the fan-out
        # and the workers' scheduler/engine phases.
        names = {span["name"] for span in spans}
        assert len(names) >= 5
        assert {"request", "shard", "evaluate"} <= names
        # Both shards appear in the fan-out.
        shard_attrs = {
            span["attrs"]["shard"]
            for span in spans
            if span["name"] == "shard"
        }
        assert shard_attrs == {0, 1}

    def test_worker_spans_nest_under_their_shard_span(self, process_router):
        _, _, client = process_router
        _, trace = client.query_traced("b.c")
        by_id = {span["id"]: span for span in trace["spans"]}
        router_pid = next(
            span["id"].split("-")[0]
            for span in trace["spans"]
            if span["name"] == "request"
        )
        worker_spans = [
            span
            for span in trace["spans"]
            if span["id"].split("-")[0] != router_pid
        ]
        assert worker_spans
        for span in worker_spans:
            # Walk up: every worker span reaches a router-side "shard"
            # span, which is how the tree stitches across the wire.
            node = span
            while node["id"].split("-")[0] != router_pid:
                node = by_id[node["parent"]]
            assert node["name"] == "shard"

    def test_untraced_response_is_trace_free_and_stable(self, process_router):
        _, handle, _ = process_router
        payload = {"id": 1, "op": "query", "queries": ["b.c"], "pairs": True}
        first = json.loads(_raw_roundtrip(handle.address, payload))
        second = json.loads(_raw_roundtrip(handle.address, payload))
        assert first["ok"] and "trace" not in first and "trace" not in second
        for response in (first, second):
            for entry in response["results"]:
                entry["time"] = 0.0
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_traced_update_spans_both_shards(self, process_router):
        _, _, client = process_router
        # One new-vertex edge anchored in every chain, so the update
        # routes to both shards; the label stays out of every query.
        response = client.update(
            add=[(f"a{i}", "zz", f"n{i}") for i in range(8)], trace=True
        )
        spans = response["trace"]["spans"]
        names = {span["name"] for span in spans}
        assert "request" in names and "shard_update" in names
        assert "update_apply" in names or "update_drain" in names
        shard_attrs = {
            span["attrs"]["shard"]
            for span in spans
            if span["name"] == "shard_update"
        }
        assert shard_attrs == {0, 1}
        pids = {span["id"].split("-")[0] for span in spans}
        assert len(pids) >= 3  # router plus both shards' workers

    def test_metrics_verbs_router_and_worker(self, process_router):
        cluster, _, client = process_router
        client.query("b.c")
        client.query("b.c")
        # The router process serves its own registry: join/phase
        # counters are registered (exposition text is well-formed) even
        # when this disjoint cluster never runs a boundary join.
        text = client.metrics()
        assert "# TYPE repro_join_rounds_total counter" in text
        # The worker path: metrics_text() leases a wire client to the
        # shard worker process and returns ITS registry, where the
        # scheduler counters actually live.
        worker = parse_prometheus(cluster._backends[0].metrics_text())
        admitted = worker["repro_requests_total"][
            frozenset({("outcome", "admitted")})
        ]
        assert admitted >= 2


class TestJoinRoundTracing:
    def test_boundary_join_rounds_traced(self):
        """An edge-cut cluster's traced query carries one span per
        fixpoint round, frontier sizes attached."""
        from test_crossshard import single_component_rmat

        graph = single_component_rmat()
        cluster = GraphCluster(
            partition_graph(graph.copy(), 2, strategy="edge-cut"),
            config=ClusterConfig(shards=2, workers=1),
        )
        try:
            assert cluster.partition.has_cuts
            router = ClusterRouter(cluster, ServerConfig(batch_window=0.002))
            with ServerThread(router) as handle:
                with Client(*handle.address) as client:
                    _, trace = client.query_traced("(l0.l1)+")
            rounds = [
                span
                for span in trace["spans"]
                if span["name"] == "join_round"
            ]
            assert rounds
            for span in rounds:
                assert "round" in span["attrs"]
                assert "frontier" in span["attrs"]
            numbers = sorted(span["attrs"]["round"] for span in rounds)
            assert numbers == list(range(len(numbers)))
            # The partial evaluations it drove are in the same tree.
            names = {span["name"] for span in trace["spans"]}
            assert "partial" in names or "evaluate" in names
        finally:
            cluster.stop()
