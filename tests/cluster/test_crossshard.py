"""Edge-cut identity gate: single-component R-MAT graphs across shards.

The tentpole's correctness oracle: a graph that is one weakly-connected
component -- the shape component-disjoint partitioning cannot shard at
all -- is edge-cut partitioned across 2 and 4 shards, on both the
thread and the process backend, and must answer the full query workload
*identically* to a single ``GraphDB`` session, including after a
cross-shard edge lands mid-workload.  The boundary join is the only
path that can make this pass; any stitching bug shows up as a pair-set
diff against ground truth.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterRouter,
    GraphCluster,
    partition_graph,
    weakly_connected_components,
)
from repro.datasets.rmat import rmat_connected_graph, rmat_graph
from repro.db import GraphDB
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse
from repro.relalg import BoundaryJoin, Relation, Scan
from repro.rpq import CUT_COLUMNS, PARTIAL_COLUMNS, eval_partial_rpq, eval_rpq
from repro.server import Client, ServerConfig, ServerThread

#: The full workload over the R-MAT alphabet (l0..l2): concatenations,
#: closures, alternation, a nullable query, single labels.
QUERIES = [
    "l0",
    "l0.l1",
    "(l0)+",
    "(l1)+.l2",
    "l2.(l0.l1)+",
    "(l0.l1)+",
    "(l0|l1)+",
    "(l2)*",
    "l0.(l2)+",
    "(l1|l2)+.l0",
]


def single_component_rmat(scale=5, num_edges=96, num_labels=3, seed=7):
    """An R-MAT graph deterministically stitched into one component."""
    graph = rmat_connected_graph(scale, num_edges, num_labels, seed=seed)
    assert len(weakly_connected_components(graph)) == 1
    return graph


def pick_cross_shard_edge(graph, partition, label="l1"):
    """The first (by string order) absent edge whose endpoints span shards."""
    vertices = sorted(graph.vertices(), key=str)
    for source in vertices:
        for target in vertices:
            if source == target:
                continue
            if partition.shard_of(source) == partition.shard_of(target):
                continue
            if not graph.has_edge(source, label, target):
                return (source, label, target)
    raise AssertionError("no cross-shard edge candidate found")


def run_workload(answer, update):
    """Half the queries, the update, the rest plus a re-ask of the first."""
    half = len(QUERIES) // 2
    results = {}
    for query in QUERIES[:half]:
        results[query] = answer(query)
    update()
    for query in QUERIES[half:] + QUERIES[:1]:
        results[f"post:{query}"] = answer(query)
    return results


def session_reference(graph, update_edge):
    db = GraphDB.open(graph.copy())
    return run_workload(
        lambda query: set(db.execute(query)),
        lambda: db.update(add=[update_edge]),
    )


class TestEdgeCutIdentity:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_matches_single_session_with_crossshard_update(
        self, shards, backend
    ):
        """The acceptance gate: edge-cut cluster == one session, mid-run
        cross-shard update included."""
        graph = single_component_rmat()
        cluster = GraphCluster(
            partition_graph(graph.copy(), shards, strategy="edge-cut"),
            config=ClusterConfig(
                shards=shards, workers=1, backend=backend
            ),
        )
        try:
            assert cluster.partition.has_cuts
            update_edge = pick_cross_shard_edge(graph, cluster.partition)
            expected = session_reference(graph, update_edge)

            def answer(query):
                pairs, _elapsed = cluster.submit(query).result(timeout=120)
                return pairs

            def update():
                cluster.submit_update(add=[update_edge]).result(timeout=120)

            results = run_workload(answer, update)
            for key in expected:
                assert results[key] == expected[key], key
            assert cluster.partition.has_cut(*update_edge)
        finally:
            cluster.stop()

    def test_identity_over_the_wire(self):
        """Same gate end-to-end: ClusterRouter + JSON-lines Client."""
        graph = single_component_rmat()
        cluster = GraphCluster(
            partition_graph(graph.copy(), 2, strategy="edge-cut"),
            config=ClusterConfig(shards=2, workers=1, backend="process"),
            start=False,
        )
        update_edge = pick_cross_shard_edge(graph, cluster.partition)
        expected = session_reference(graph, update_edge)
        router = ClusterRouter(cluster, ServerConfig(batch_window=0.002))
        with ServerThread(router) as handle:
            with Client(*handle.address) as client:
                results = run_workload(
                    lambda query: client.query(query).pairs,
                    lambda: client.update(add=[list(update_edge)]),
                )
                # Counts-only answers go through the same join path.
                for query in QUERIES[5:8]:
                    counted = client.query(query, pairs=False)
                    assert counted.count == len(results[f"post:{query}"])
        for key in expected:
            assert results[key] == expected[key], key

    def test_counts_only_never_double_counts(self):
        """Partial answers overlap across shards; counts must not sum them."""
        graph = single_component_rmat()
        cluster = GraphCluster(
            partition_graph(graph.copy(), 2, strategy="edge-cut"),
            config=ClusterConfig(shards=2, workers=1),
        )
        try:
            for query in QUERIES[:4]:
                pairs, _ = cluster.submit(query).result(timeout=120)
                count, _ = cluster.submit(query, want_pairs=False).result(
                    timeout=120
                )
                assert count == len(pairs), query
        finally:
            cluster.stop()

    def test_reaches_crosses_cuts(self):
        graph = single_component_rmat()
        cluster = GraphCluster(
            partition_graph(graph.copy(), 2, strategy="edge-cut"),
            config=ClusterConfig(shards=2, workers=1),
        )
        try:
            session = GraphDB.open(graph.copy())
            closure = set(session.execute("(l0)+"))
            crossing = [
                (source, target)
                for source, target in closure
                if cluster.partition.shard_of(source)
                != cluster.partition.shard_of(target)
            ]
            assert crossing, "test graph must have cross-shard reachability"
            for source, target in crossing[:5]:
                assert cluster.reaches("l0", source, target)
            assert not cluster.reaches("l0", "no-such-vertex", crossing[0][1])
        finally:
            cluster.stop()


class TestPartialEvaluation:
    """Unit coverage of the shard-local half of the boundary join."""

    def test_empty_boundary_equals_full_evaluation(self):
        graph = rmat_graph(4, 40, 2, seed=3)
        for text in ["l0", "(l0)+", "(l0.l1)+", "(l1)*"]:
            nfa = compile_nfa(parse(text))
            accepts, boundary_rows = eval_partial_rpq(graph, nfa, frozenset())
            assert accepts == eval_rpq(graph, text), text
            assert boundary_rows == set()

    def test_boundary_rows_cover_every_boundary_touch(self):
        graph = single_component_rmat()
        partition = partition_graph(graph, 2, strategy="edge-cut")
        shard = partition.shards[0]
        boundary = partition.boundary_vertices(0)
        nfa = compile_nfa(parse("(l0)+"))
        _accepts, rows = eval_partial_rpq(shard, nfa, boundary)
        assert rows, "shard 0 must touch its boundary on (l0)+"
        for _start, vertex, state in rows:
            assert vertex in boundary
            assert state in nfa.delta  # delta is total on reachable states

    def test_frontier_continuation_records_accepts(self):
        """A frontier triple already in an accepting state yields its pair."""
        graph = rmat_graph(4, 40, 2, seed=3)
        nfa = compile_nfa(parse("(l0)+"))
        accept_state = next(iter(nfa.accepts))
        vertex = next(iter(sorted(graph.vertices(), key=str)))
        accepts, _rows = eval_partial_rpq(
            graph, nfa, frozenset(), frontier=[("origin", vertex, accept_state)]
        )
        assert ("origin", vertex) in accepts


class TestBoundaryJoinExpression:
    def test_join_advances_states_over_cuts(self):
        nfa = compile_nfa(parse("(l0)+"))
        start = next(s for s in sorted(nfa.start) if nfa.delta[s].get("l0"))
        targets = nfa.delta[start]["l0"]
        partials = Scan(
            Relation(PARTIAL_COLUMNS, {("s", "u", start)}), "P"
        )
        cuts = Scan(Relation(CUT_COLUMNS, {("u", "l0", "v")}), "C")
        advanced = BoundaryJoin(partials, cuts, nfa).evaluate()
        assert set(advanced.rows) == {("s", "v", t) for t in targets}

    def test_label_mismatch_yields_nothing(self):
        nfa = compile_nfa(parse("(l0)+"))
        start = next(iter(nfa.start))
        partials = Scan(
            Relation(PARTIAL_COLUMNS, {("s", "u", start)}), "P"
        )
        cuts = Scan(Relation(CUT_COLUMNS, {("u", "l9", "v")}), "C")
        advanced = BoundaryJoin(partials, cuts, nfa).evaluate()
        assert set(advanced.rows) == set()

    def test_to_algebra_renders(self):
        nfa = compile_nfa(parse("l0"))
        expr = BoundaryJoin(
            Scan(Relation(PARTIAL_COLUMNS, set()), "P"),
            Scan(Relation(CUT_COLUMNS, set()), "C"),
            nfa,
        )
        assert "END_V" in expr.to_algebra()
