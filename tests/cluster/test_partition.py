"""Partitioner tests: component integrity, balance, routing metadata."""

import pytest

from repro.cluster import (
    PARTITION_STRATEGIES,
    partition_graph,
    weakly_connected_components,
)
from repro.errors import ClusterError, GraphError
from repro.graph.builders import paper_figure1_graph
from repro.graph.multigraph import LabeledMultigraph


class TestComponents:
    def test_components_of_multi_fig1(self, multi_fig1):
        components = weakly_connected_components(multi_fig1)
        assert len(components) == 4
        assert sorted(len(component) for component in components) == [10] * 4

    def test_isolated_vertices_are_components(self):
        graph = LabeledMultigraph()
        graph.add_vertex("lonely")
        graph.add_edge("a", "x", "b")
        components = weakly_connected_components(graph)
        assert sorted(len(component) for component in components) == [1, 2]

    def test_direction_is_ignored(self):
        graph = LabeledMultigraph.from_edges([("a", "x", "b"), ("c", "x", "b")])
        assert len(weakly_connected_components(graph)) == 1


class TestPartitionGraph:
    def test_conserves_vertices_and_edges(self, multi_fig1):
        partition = partition_graph(multi_fig1, 4)
        assert sum(g.num_vertices for g in partition.shards) == (
            multi_fig1.num_vertices
        )
        assert sum(g.num_edges for g in partition.shards) == multi_fig1.num_edges
        all_edges = set()
        for shard in partition.shards:
            edges = set(shard.edges())
            assert not all_edges & edges, "an edge landed on two shards"
            all_edges |= edges
        assert all_edges == set(multi_fig1.edges())

    def test_components_stay_whole(self, multi_fig1):
        partition = partition_graph(multi_fig1, 4)
        for component in weakly_connected_components(multi_fig1):
            shards = {partition.shard_of(vertex) for vertex in component}
            assert len(shards) == 1

    def test_balance_four_equal_components(self, multi_fig1):
        partition = partition_graph(multi_fig1, 4)
        edges = [g.num_edges for g in partition.shards]
        assert edges == [16, 16, 16, 16]

    def test_more_shards_than_components(self, two_worlds):
        partition = partition_graph(two_worlds, 4)
        edges = sorted(g.num_edges for g in partition.shards)
        assert edges == [0, 0, 3, 3]

    def test_single_shard_is_the_whole_graph(self, multi_fig1):
        partition = partition_graph(multi_fig1, 1)
        assert partition.shards[0] == multi_fig1

    def test_deterministic_assignment(self, multi_fig1):
        first = partition_graph(multi_fig1, 4)
        second = partition_graph(multi_fig1, 4)
        for vertex in multi_fig1.vertices():
            assert first.shard_of(vertex) == second.shard_of(vertex)

    def test_invalid_shard_count(self, multi_fig1):
        with pytest.raises(ClusterError):
            partition_graph(multi_fig1, 0)


class TestRoutingMetadata:
    def test_shard_for_edge_within_one_shard(self, two_worlds):
        partition = partition_graph(two_worlds, 2)
        shard = partition.shard_of("a1")
        assert partition.shard_for_edge("a1", "a3") == shard

    def test_shard_for_edge_cross_shard_is_none(self, two_worlds):
        partition = partition_graph(two_worlds, 2)
        assert partition.shard_of("a1") != partition.shard_of("b1")
        # No single shard owns a cross-shard edge; edge_owners names both.
        assert partition.shard_for_edge("a1", "b1") is None
        assert partition.edge_owners("a1", "b1") == (
            partition.shard_of("a1"),
            partition.shard_of("b1"),
        )

    def test_new_vertices_resolve_and_assign(self, two_worlds):
        partition = partition_graph(two_worlds, 2)
        shard = partition.shard_of("a1")
        assert partition.shard_for_edge("a1", "brand-new") == shard
        assert partition.shard_for_edge("both", "new") is None
        assert partition.assign("both", 1) == 1
        assert partition.assign("both", 0) == 1, "first assignment wins"

    def test_stats_document(self, multi_fig1):
        stats = partition_graph(multi_fig1, 4).stats()
        assert stats["num_shards"] == 4
        assert stats["cut_edges"] == 0
        assert [shard["edges"] for shard in stats["shards"]] == [16] * 4


class TestEdgeCut:
    """``strategy="edge-cut"``: any partition, cuts recorded explicitly."""

    def test_strategies_are_published(self):
        assert set(PARTITION_STRATEGIES) == {"component", "edge-cut", "auto"}

    def test_conserves_vertices_and_edges_including_cuts(self):
        graph = paper_figure1_graph()  # one weakly-connected component
        partition = partition_graph(graph, 2, strategy="edge-cut")
        assert sum(g.num_vertices for g in partition.shards) == (
            graph.num_vertices
        )
        shard_edges = set()
        for shard in partition.shards:
            edges = set(shard.edges())
            assert not shard_edges & edges
            shard_edges |= edges
        cuts = partition.cut_relation()
        assert not shard_edges & cuts
        assert shard_edges | cuts == set(graph.edges())
        assert partition.has_cuts
        assert len(cuts) > 0

    def test_vertex_ranges_are_balanced(self):
        graph = paper_figure1_graph()
        partition = partition_graph(graph, 4, strategy="edge-cut")
        counts = sorted(g.num_vertices for g in partition.shards)
        assert max(counts) - min(counts) <= 1

    def test_cut_endpoints_live_on_distinct_shards(self):
        graph = paper_figure1_graph()
        partition = partition_graph(graph, 2, strategy="edge-cut")
        for source, _label, target in partition.cut_relation():
            assert partition.shard_of(source) != partition.shard_of(target)

    def test_deterministic(self):
        graph = paper_figure1_graph()
        first = partition_graph(graph, 3, strategy="edge-cut")
        second = partition_graph(graph, 3, strategy="edge-cut")
        for vertex in graph.vertices():
            assert first.shard_of(vertex) == second.shard_of(vertex)
        assert first.cut_relation() == second.cut_relation()

    def test_boundary_vertices_are_shard_owned_cut_endpoints(self):
        graph = paper_figure1_graph()
        partition = partition_graph(graph, 2, strategy="edge-cut")
        for shard in range(2):
            boundary = partition.boundary_vertices(shard)
            assert all(partition.shard_of(v) == shard for v in boundary)
            expected = {
                vertex
                for source, _label, target in partition.cut_relation()
                for vertex in (source, target)
                if partition.shard_of(vertex) == shard
            }
            assert boundary == expected

    def test_record_and_discard_cut(self, two_worlds):
        partition = partition_graph(two_worlds, 2)
        assert not partition.has_cuts
        partition.record_cut("a1", "x", "b1")
        assert partition.has_cut("a1", "x", "b1")
        with pytest.raises(GraphError, match="duplicate cross-shard"):
            partition.record_cut("a1", "x", "b1")
        assert partition.discard_cut("a1", "x", "b1")
        assert not partition.discard_cut("a1", "x", "b1")
        assert not partition.has_cuts

    def test_stats_count_cuts_and_boundaries(self):
        graph = paper_figure1_graph()
        partition = partition_graph(graph, 2, strategy="edge-cut")
        stats = partition.stats()
        assert stats["cut_edges"] == len(partition.cut_relation())
        for index, shard in enumerate(stats["shards"]):
            assert shard["boundary"] == len(partition.boundary_vertices(index))

    def test_auto_picks_component_when_balanced(self, multi_fig1):
        partition = partition_graph(multi_fig1, 4, strategy="auto")
        assert not partition.has_cuts

    def test_auto_picks_edge_cut_for_a_giant_component(self):
        partition = partition_graph(paper_figure1_graph(), 2, strategy="auto")
        assert partition.has_cuts  # one component would pin shard 1 empty

    def test_underscores_accepted_in_strategy_name(self):
        partition = partition_graph(paper_figure1_graph(), 2, strategy="edge_cut")
        assert partition.has_cuts

    def test_unknown_strategy_raises(self, multi_fig1):
        with pytest.raises(ClusterError, match="unknown partition strategy") as info:
            partition_graph(multi_fig1, 2, strategy="metis")
        assert info.value.code == "cluster.unsupported"
