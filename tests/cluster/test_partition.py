"""Partitioner tests: component integrity, balance, routing metadata."""

import pytest

from repro.cluster import partition_graph, weakly_connected_components
from repro.errors import ClusterError
from repro.graph.multigraph import LabeledMultigraph


class TestComponents:
    def test_components_of_multi_fig1(self, multi_fig1):
        components = weakly_connected_components(multi_fig1)
        assert len(components) == 4
        assert sorted(len(component) for component in components) == [10] * 4

    def test_isolated_vertices_are_components(self):
        graph = LabeledMultigraph()
        graph.add_vertex("lonely")
        graph.add_edge("a", "x", "b")
        components = weakly_connected_components(graph)
        assert sorted(len(component) for component in components) == [1, 2]

    def test_direction_is_ignored(self):
        graph = LabeledMultigraph.from_edges([("a", "x", "b"), ("c", "x", "b")])
        assert len(weakly_connected_components(graph)) == 1


class TestPartitionGraph:
    def test_conserves_vertices_and_edges(self, multi_fig1):
        partition = partition_graph(multi_fig1, 4)
        assert sum(g.num_vertices for g in partition.shards) == (
            multi_fig1.num_vertices
        )
        assert sum(g.num_edges for g in partition.shards) == multi_fig1.num_edges
        all_edges = set()
        for shard in partition.shards:
            edges = set(shard.edges())
            assert not all_edges & edges, "an edge landed on two shards"
            all_edges |= edges
        assert all_edges == set(multi_fig1.edges())

    def test_components_stay_whole(self, multi_fig1):
        partition = partition_graph(multi_fig1, 4)
        for component in weakly_connected_components(multi_fig1):
            shards = {partition.shard_of(vertex) for vertex in component}
            assert len(shards) == 1

    def test_balance_four_equal_components(self, multi_fig1):
        partition = partition_graph(multi_fig1, 4)
        edges = [g.num_edges for g in partition.shards]
        assert edges == [16, 16, 16, 16]

    def test_more_shards_than_components(self, two_worlds):
        partition = partition_graph(two_worlds, 4)
        edges = sorted(g.num_edges for g in partition.shards)
        assert edges == [0, 0, 3, 3]

    def test_single_shard_is_the_whole_graph(self, multi_fig1):
        partition = partition_graph(multi_fig1, 1)
        assert partition.shards[0] == multi_fig1

    def test_deterministic_assignment(self, multi_fig1):
        first = partition_graph(multi_fig1, 4)
        second = partition_graph(multi_fig1, 4)
        for vertex in multi_fig1.vertices():
            assert first.shard_of(vertex) == second.shard_of(vertex)

    def test_invalid_shard_count(self, multi_fig1):
        with pytest.raises(ClusterError):
            partition_graph(multi_fig1, 0)


class TestRoutingMetadata:
    def test_shard_for_edge_within_one_shard(self, two_worlds):
        partition = partition_graph(two_worlds, 2)
        shard = partition.shard_of("a1")
        assert partition.shard_for_edge("a1", "a3") == shard

    def test_shard_for_edge_cross_shard_raises(self, two_worlds):
        partition = partition_graph(two_worlds, 2)
        assert partition.shard_of("a1") != partition.shard_of("b1")
        with pytest.raises(ClusterError, match="crosses shards"):
            partition.shard_for_edge("a1", "b1")

    def test_new_vertices_resolve_and_assign(self, two_worlds):
        partition = partition_graph(two_worlds, 2)
        shard = partition.shard_of("a1")
        assert partition.shard_for_edge("a1", "brand-new") == shard
        assert partition.shard_for_edge("both", "new") is None
        assert partition.assign("both", 1) == 1
        assert partition.assign("both", 0) == 1, "first assignment wins"

    def test_stats_document(self, multi_fig1):
        stats = partition_graph(multi_fig1, 4).stats()
        assert stats["num_shards"] == 4
        assert [shard["edges"] for shard in stats["shards"]] == [16] * 4
