"""GraphCluster unit tests: fan-out, pruning, replicas, updates, stats."""

import pytest

from repro.cluster import ClusterConfig, GraphCluster, partition_graph
from repro.db import GraphDB
from repro.errors import AdmissionError, ClusterError, ServerError

QUERIES = [
    "a.(b.c)+",
    "d.(b.c)+.c",
    "(b.c)+.c",
    "(b.c)+",
    "a.(c.b)+",
    "(c.b)+.b",
    "d.(b)+",
    "(b)+.c",
    "b.c",
    "a|d.(b.c)+",
]


def cluster_answer(cluster: GraphCluster, query: str) -> set:
    pairs, _elapsed = cluster.submit(query).result(timeout=30)
    return pairs


class TestQueryFanOut:
    @pytest.mark.parametrize("shards,replicas", [(1, 1), (2, 2), (4, 2)])
    def test_matches_single_session(self, multi_fig1, shards, replicas):
        cluster = GraphCluster.open(
            multi_fig1,
            config=ClusterConfig(shards=shards, replicas=replicas, workers=1),
        )
        session = GraphDB.open(multi_fig1)
        try:
            for query in QUERIES:
                assert cluster_answer(cluster, query) == set(
                    session.execute(query)
                ), query
        finally:
            cluster.stop()

    def test_nullable_query_spans_all_shards(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=4, workers=1)
        )
        try:
            pairs = cluster_answer(cluster, "(b.c)*")
            reflexive = {pair for pair in pairs if pair[0] == pair[1]}
            assert len(reflexive) == multi_fig1.num_vertices
        finally:
            cluster.stop()

    def test_empty_shards_answer_empty(self, two_worlds):
        cluster = GraphCluster.open(
            two_worlds, config=ClusterConfig(shards=4, workers=1)
        )
        try:
            assert cluster_answer(cluster, "x.x") == set(
                GraphDB.open(two_worlds).execute("x.x")
            )
        finally:
            cluster.stop()

    def test_submit_after_stop_raises(self, two_worlds):
        cluster = GraphCluster.open(two_worlds, config=ClusterConfig(shards=2))
        cluster.stop()
        with pytest.raises(ServerError):
            cluster.submit("x.x")

    def test_admission_is_all_or_nothing(self, two_worlds):
        cluster = GraphCluster.open(
            two_worlds,
            config=ClusterConfig(shards=2, workers=1, max_queue=1),
            start=False,  # schedulers stopped: the queues fill deterministically
        )
        # Fill both shard queues to the brim, then one more fan-out must
        # reject without leaking a half-admitted query.
        cluster.submit("(x|p).(x|p)")
        with pytest.raises(AdmissionError):
            cluster.submit("(x|p).(x|p)")


class TestShardPruning:
    def test_label_disjoint_shards_are_skipped(self, two_worlds):
        cluster = GraphCluster.open(
            two_worlds, config=ClusterConfig(shards=2, workers=1)
        )
        try:
            session = GraphDB.open(two_worlds)
            assert cluster_answer(cluster, "x.x") == set(session.execute("x.x"))
            assert cluster_answer(cluster, "p.q") == set(session.execute("p.q"))
            # Only the x/y shard evaluated "x.x"; the p/q shard saw one
            # query ("p.q") and nothing else.
            completed = [
                cluster.replica(shard).scheduler.stats()["completed"]
                for shard in range(2)
            ]
            assert sorted(completed) == [1, 1]
        finally:
            cluster.stop()

    def test_pruning_stays_sound_after_label_adding_update(self, two_worlds):
        cluster = GraphCluster.open(
            two_worlds, config=ClusterConfig(shards=2, workers=1)
        )
        try:
            shard = cluster.partition.shard_of("b1")
            assert cluster_answer(cluster, "z") == set()
            cluster.submit_update(add=[("b1", "z", "b3")]).result(timeout=30)
            assert cluster_answer(cluster, "z") == {("b1", "b3")}
            assert shard == cluster.partition.shard_of("b1")
        finally:
            cluster.stop()


class TestReplicas:
    def test_body_affinity_pins_bodies_to_replicas(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=1, replicas=2, workers=1)
        )
        try:
            for _ in range(6):
                cluster_answer(cluster, "a.(b.c)+")
            constructions = [
                cluster.replica(0, replica)
                .scheduler.shared_cache.snapshot_stats()
                .misses
                for replica in range(2)
            ]
            # One replica owns the body and computed its RTC once; the
            # other never saw it.
            assert sorted(constructions) == [0, 1]
        finally:
            cluster.stop()

    def test_closure_free_queries_spread_by_load(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=1, replicas=2, workers=1)
        )
        try:
            for _ in range(8):
                cluster_answer(cluster, "b.c")
            served = [
                cluster.replica(0, replica).scheduler.stats()["completed"]
                for replica in range(2)
            ]
            assert sum(served) == 8
        finally:
            cluster.stop()

    def test_replicas_converge_after_update(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=2, replicas=2, workers=1)
        )
        try:
            cluster.submit_update(add=[("0:1", "b", "0:99")]).result(timeout=30)
            shard = cluster.partition.shard_of("0:1")
            for replica in range(2):
                graph = cluster.replica(shard, replica).db.graph
                assert graph.has_edge("0:1", "b", "0:99")
        finally:
            cluster.stop()


class TestUpdates:
    def test_update_routes_to_owning_shard_only(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=4, workers=1)
        )
        try:
            cluster.submit_update(add=[("2:1", "b", "2:99")]).result(timeout=30)
            updates = [
                cluster.replica(shard).scheduler.stats()["updates"]
                for shard in range(4)
            ]
            assert sorted(updates) == [0, 0, 0, 1]
        finally:
            cluster.stop()

    def test_cross_shard_add_records_a_cut(self, multi_fig1):
        """A cross-shard add lands in the cut relation and changes answers."""
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=4, workers=1)
        )
        try:
            before = cluster_answer(cluster, "(b)+")
            cluster.submit_update(add=[("0:1", "b", "1:1")]).result(timeout=30)
            assert cluster.partition.has_cut("0:1", "b", "1:1")
            after = cluster_answer(cluster, "(b)+")
            assert ("0:1", "1:1") in after
            assert after > before
            # Duplicate cross-shard adds keep the multigraph's contract.
            from repro.errors import GraphError

            with pytest.raises(GraphError, match="duplicate cross-shard"):
                cluster.submit_update(add=[("0:1", "b", "1:1")])
            # Removing the cut restores the disjoint answers.
            cluster.submit_update(remove=[("0:1", "b", "1:1")]).result(
                timeout=30
            )
            assert cluster_answer(cluster, "(b)+") == before
        finally:
            cluster.stop()

    def test_cross_shard_remove_of_unrecorded_edge_raises(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=4, workers=1)
        )
        try:
            with pytest.raises(ClusterError, match="not a recorded") as info:
                cluster.submit_update(remove=[("0:1", "b", "1:1")])
            assert info.value.code == "cluster.unknown_edge"
            assert info.value.detail == ["0:1", "b", "1:1"]
            assert len(info.value.shards) == 2
        finally:
            cluster.stop()

    def test_new_component_lands_on_smallest_shard(self, two_worlds):
        cluster = GraphCluster.open(
            two_worlds, config=ClusterConfig(shards=4, workers=1)
        )
        try:
            cluster.submit_update(add=[("new1", "x", "new2")]).result(timeout=30)
            shard = cluster.partition.shard_of("new1")
            assert cluster.replica(shard).db.graph.num_edges == 1  # was empty
            assert cluster.partition.shard_of("new2") == shard
            assert cluster_answer(cluster, "x") >= {("new1", "new2")}
        finally:
            cluster.stop()

    def test_rejected_batch_leaves_no_phantom_state(self, multi_fig1):
        """A request failing validation mutates nothing (two-phase routing)."""
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=4, workers=1)
        )
        try:
            with pytest.raises(ClusterError, match="neither endpoint"):
                cluster.submit_update(
                    add=[("brand-new-a", "b", "brand-new-b")],  # valid alone
                    # Unknown-edge remove: rejects the whole batch.
                    remove=[("ghost", "b", "phantom")],
                )
            assert cluster.partition.shard_of("brand-new-a") is None
            assert cluster.partition.shard_of("brand-new-b") is None
            for shard in range(4):
                assert not cluster.replica(shard).db.graph.has_vertex(
                    "brand-new-a"
                )
        finally:
            cluster.stop()

    def test_same_batch_new_vertices_route_consistently(self, two_worlds):
        """Edges chaining through a batch-new vertex land on one shard."""
        cluster = GraphCluster.open(
            two_worlds, config=ClusterConfig(shards=2, workers=1)
        )
        try:
            cluster.submit_update(
                add=[("a1", "x", "fresh"), ("fresh", "x", "fresher")]
            ).result(timeout=30)
            shard = cluster.partition.shard_of("a1")
            assert cluster.partition.shard_of("fresh") == shard
            assert cluster.partition.shard_of("fresher") == shard
            assert cluster_answer(cluster, "x.x") >= {("a1", "fresher")}
        finally:
            cluster.stop()

    def test_full_replica_queue_never_splits_an_update(self, multi_fig1):
        """Blocking admission: broadcasts apply on every replica copy."""
        cluster = GraphCluster.open(
            multi_fig1,
            config=ClusterConfig(shards=2, replicas=2, workers=1, max_queue=1),
        )
        try:
            futures = [
                cluster.submit_update(add=[("0:1", "f", f"0:{400 + i}")])
                for i in range(6)
            ]
            for future in futures:
                future.result(timeout=60)
            shard = cluster.partition.shard_of("0:1")
            for replica in range(2):
                graph = cluster.replica(shard, replica).db.graph
                for i in range(6):
                    assert graph.has_edge("0:1", "f", f"0:{400 + i}")
        finally:
            cluster.stop()

    def test_remove_unknown_edge_raises(self, two_worlds):
        cluster = GraphCluster.open(
            two_worlds, config=ClusterConfig(shards=2, workers=1)
        )
        try:
            with pytest.raises(ClusterError, match="neither endpoint"):
                cluster.submit_update(remove=[("ghost", "x", "phantom")])
        finally:
            cluster.stop()

    def test_query_after_update_sees_new_state(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=4, replicas=2, workers=1)
        )
        try:
            before = cluster_answer(cluster, "(b)+")
            cluster.submit_update(add=[("3:1", "b", "3:98")]).result(timeout=30)
            cluster.submit_update(
                add=[("3:98", "b", "3:97")], remove=[("3:1", "b", "3:98")]
            ).result(timeout=30)
            after = cluster_answer(cluster, "(b)+")
            expected_change = {("3:98", "3:97")}
            assert after == before | expected_change
        finally:
            cluster.stop()


class TestWatchAndReaches:
    def test_watch_broadcasts_and_reaches_routes(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=4, replicas=2, workers=1)
        )
        try:
            assert cluster.watch("b.c") == "b.c"
            session = GraphDB.open(multi_fig1)
            for source, target in set(session.execute("(b.c)+")):
                assert cluster.reaches("b.c", source, target)
            assert not cluster.reaches("b.c", "0:1", "1:1")
            assert not cluster.reaches("b.c", "ghost", "0:1")
        finally:
            cluster.stop()

    def test_reaches_tracks_updates(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=4, workers=1)
        )
        try:
            cluster.watch("e")
            assert not cluster.reaches("e", "0:1", "0:95")
            cluster.submit_update(add=[("0:1", "e", "0:95")]).result(timeout=30)
            assert cluster.reaches("e", "0:1", "0:95")
        finally:
            cluster.stop()


class TestShardPruningAccounting:
    def test_fully_pruned_queries_stay_on_the_books(self, two_worlds):
        """Router-answered queries still count as admitted + completed."""
        cluster = GraphCluster.open(
            two_worlds, config=ClusterConfig(shards=2, workers=1)
        )
        try:
            for _ in range(3):
                assert cluster_answer(cluster, "nosuchlabel") == set()
            stats = cluster.stats()
            assert stats["answered_without_fanout"] == 3
            assert stats["completed"] == 3
            assert stats["admitted"] == (
                stats["completed"]
                + stats["expired"]
                + stats["failed"]
                + stats["cancelled"]
                + stats["updates"]
            )
        finally:
            cluster.stop()


class TestStats:
    def test_aggregate_counters_and_sessions(self, multi_fig1):
        cluster = GraphCluster.open(
            multi_fig1, config=ClusterConfig(shards=4, replicas=2, workers=1)
        )
        try:
            for query in QUERIES:
                cluster_answer(cluster, query)
            cluster.submit_update(add=[("0:1", "b", "0:99")]).result(timeout=30)
            scheduler_stats = cluster.stats()
            assert scheduler_stats["completed"] >= len(QUERIES)
            assert scheduler_stats["updates"] == 2  # both replicas applied
            assert scheduler_stats["in_flight"] == 0
            assert scheduler_stats["latency"]["p95"] >= 0.0
            assert scheduler_stats["cache"]["hits"] >= 0

            session_stats = cluster.session_stats()
            assert session_stats["graph"]["edges"] == multi_fig1.num_edges + 1
            assert session_stats["graph"]["vertices"] == (
                multi_fig1.num_vertices + 1
            )

            topology = cluster.describe()
            assert topology["shards"] == 4
            assert topology["replicas"] == 2
            assert len(topology["per_shard"]) == 4
            assert all(
                len(shard["replicas"]) == 2 for shard in topology["per_shard"]
            )
        finally:
            cluster.stop()
