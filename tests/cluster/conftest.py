"""Fixtures for the cluster suite: multi-component graphs to shard."""

import pytest

from repro.graph.builders import paper_figure1_graph
from repro.graph.multigraph import LabeledMultigraph


def relabeled_copies(base: LabeledMultigraph, copies: int) -> LabeledMultigraph:
    """``copies`` disjoint relabeled copies of ``base`` in one graph."""
    graph = LabeledMultigraph()
    for copy in range(copies):
        for vertex in base.vertices():
            graph.add_vertex(f"{copy}:{vertex}")
        for source, label, target in base.edges():
            graph.add_edge(f"{copy}:{source}", label, f"{copy}:{target}")
    return graph


@pytest.fixture
def multi_fig1():
    """Four disjoint copies of the paper's Fig. 1 graph (one per shard)."""
    return relabeled_copies(paper_figure1_graph(), 4)


@pytest.fixture
def two_worlds():
    """Two components over disjoint alphabets (exercises shard pruning)."""
    return LabeledMultigraph.from_edges(
        [
            ("a1", "x", "a2"),
            ("a2", "x", "a3"),
            ("a3", "y", "a1"),
            ("b1", "p", "b2"),
            ("b2", "q", "b1"),
            ("b2", "p", "b3"),
        ]
    )
