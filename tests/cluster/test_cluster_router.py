"""ClusterRouter end-to-end: the unchanged Client against a cluster.

Everything here goes over real TCP through the PR-3 wire protocol --
the point being that a :class:`~repro.server.Client` cannot tell (except
by reading ``stats``) whether it talks to one session or to a
4-shard x 2-replica cluster.
"""

import pytest

from repro.cluster import ClusterConfig, ClusterRouter, GraphCluster
from repro.db import GraphDB
from repro.errors import RPQSyntaxError
from repro.server import Client, ServerConfig, ServerThread

from test_cluster import QUERIES


@pytest.fixture
def served(multi_fig1):
    cluster = GraphCluster.open(
        multi_fig1,
        config=ClusterConfig(shards=4, replicas=2, workers=1),
        start=False,
    )
    router = ClusterRouter(cluster, ServerConfig(batch_window=0.002))
    with ServerThread(router) as handle:
        with Client(*handle.address) as client:
            yield client, multi_fig1


class TestProtocolOverCluster:
    def test_ping(self, served):
        client, _graph = served
        assert client.ping() >= 1

    def test_query_many_matches_session(self, served):
        client, graph = served
        session = GraphDB.open(graph)
        results = client.query_many(QUERIES)
        for query, result in zip(QUERIES, results):
            assert result.pairs == set(session.execute(query)), query

    def test_counts_only(self, served):
        client, graph = served
        result = client.query("(b.c)+", pairs=False)
        assert result.pairs is None
        assert result.count == len(set(GraphDB.open(graph).execute("(b.c)+")))

    def test_syntax_error_comes_back_typed(self, served):
        client, _graph = served
        with pytest.raises(RPQSyntaxError):
            client.query("((")
        assert client.ping() >= 1  # well-framed error: client stays usable

    def test_update_watch_reaches(self, served):
        client, _graph = served
        assert client.watch("b.c") == "b.c"
        client.update(add=[("0:1", "e", "0:90")])
        assert client.reaches("e", "0:1", "0:90")
        assert not client.reaches("e", "0:90", "0:1")
        client.update(remove=[("0:1", "e", "0:90")])
        assert not client.reaches("e", "0:1", "0:90")

    def test_cross_shard_update_is_a_wire_error(self, served):
        """ClusterError survives the wire round trip, structured fields
        included (a cross-shard *add* now records a cut; removing an
        unrecorded cut is the error case)."""
        client, _graph = served
        from repro.errors import ClusterError

        with pytest.raises(ClusterError, match="not a recorded") as info:
            client.update(remove=[("0:1", "b", "1:1")])
        assert info.value.code == "cluster.unknown_edge"
        assert info.value.detail == ["0:1", "b", "1:1"]
        assert len(info.value.shards) == 2
        assert client.ping() >= 1

    def test_stats_document_shape(self, served):
        client, graph = served
        client.query_many(QUERIES)
        stats = client.stats()
        assert stats["server"]["version"] >= 1
        assert stats["scheduler"]["completed"] >= len(QUERIES)
        assert stats["scheduler"]["in_flight"] == 0
        assert "cache" in stats["scheduler"]
        assert stats["session"]["graph"]["edges"] == graph.num_edges
        cluster_doc = stats["cluster"]
        assert cluster_doc["shards"] == 4
        assert cluster_doc["replicas"] == 2
        per_shard_completed = sum(
            replica["completed"]
            for shard in cluster_doc["per_shard"]
            for replica in shard["replicas"]
        )
        assert per_shard_completed == stats["scheduler"]["completed"]
