"""Tests for the RPQ query parser."""

import pytest

from repro.errors import RPQSyntaxError
from repro.regex.ast import (
    EPSILON,
    Label,
    Optional,
    Plus,
    Star,
    concat,
    union,
)
from repro.regex.parser import parse, tokenize


class TestTokenizer:
    def test_identifiers_and_symbols(self):
        tokens = tokenize("ab.(c)+")
        assert [(t.kind, t.text) for t in tokens] == [
            ("label", "ab"),
            (".", "."),
            ("(", "("),
            ("label", "c"),
            (")", ")"),
            ("+", "+"),
        ]

    def test_middle_dot_is_concat(self):
        tokens = tokenize("a·b")
        assert [t.kind for t in tokens] == ["label", ".", "label"]

    def test_quoted_label(self):
        tokens = tokenize("<has part>.a")
        assert tokens[0].kind == "label"
        assert tokens[0].text == "has part"

    def test_unterminated_quote(self):
        with pytest.raises(RPQSyntaxError, match="unterminated"):
            tokenize("<oops")

    def test_empty_quote(self):
        with pytest.raises(RPQSyntaxError, match="empty quoted"):
            tokenize("<>")

    def test_stray_character(self):
        with pytest.raises(RPQSyntaxError, match="unexpected character"):
            tokenize("a @ b")

    def test_whitespace_ignored(self):
        assert len(tokenize("  a  .  b  ")) == 3


class TestParser:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a", Label("a")),
            ("a.b", concat(Label("a"), Label("b"))),
            ("a·b", concat(Label("a"), Label("b"))),
            ("a|b", union(Label("a"), Label("b"))),
            ("a+", Plus(Label("a"))),
            ("a*", Star(Label("a"))),
            ("a?", Optional(Label("a"))),
            ("()", EPSILON),
            ("(a)", Label("a")),
            ("(a.b)+", Plus(concat(Label("a"), Label("b")))),
            ("a.b|c", union(concat(Label("a"), Label("b")), Label("c"))),
            ("(a|b).c", concat(union(Label("a"), Label("b")), Label("c"))),
            ("a++", Plus(Plus(Label("a")))),
            ("a*?", Optional(Star(Label("a")))),
            ("<x y>.b", concat(Label("x y"), Label("b"))),
        ],
    )
    def test_structures(self, text, expected):
        assert parse(text) == expected

    def test_juxtaposition_concat(self):
        assert parse("(a|b)c") == concat(union(Label("a"), Label("b")), Label("c"))
        assert parse("a b") == concat(Label("a"), Label("b"))

    def test_adjacent_identifiers_are_one_label(self):
        # "ab" is a single label, not a . b.
        assert parse("ab") == Label("ab")

    def test_precedence_full_query(self):
        # The paper's d·(b·c)+·c.
        expected = concat(
            Label("d"), Plus(concat(Label("b"), Label("c"))), Label("c")
        )
        assert parse("d.(b.c)+.c") == expected

    def test_parse_is_idempotent_on_ast(self):
        node = parse("a.(b|c)+")
        assert parse(node) is node

    def test_roundtrip_through_to_string(self):
        for text in ["a.(b.c)+.c", "(a.b)*.b+.(a.b+.c)+", "a|b.c?", "(a|b)+.c"]:
            node = parse(text)
            assert parse(node.to_string()) == node

    @pytest.mark.parametrize(
        "bad",
        ["", "  ", "|a", "a|", "a.", ".a", "(a", "a)", "+", "a||b", "()+(",],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(RPQSyntaxError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(RPQSyntaxError) as excinfo:
            parse("a . . b")
        assert excinfo.value.position is not None
