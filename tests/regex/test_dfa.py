"""Tests for determinisation, minimisation and canonical language keys."""

import itertools

import pytest

from repro.regex.dfa import canonical_key, determinize, languages_equal, minimize
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse


def dfa_of(query: str):
    return determinize(compile_nfa(parse(query)))


def words(alphabet: str, max_length: int):
    for length in range(max_length + 1):
        yield from ("".join(w) for w in itertools.product(alphabet, repeat=length))


class TestDeterminize:
    @pytest.mark.parametrize(
        "query", ["a", "a.b", "a|b", "a+", "a*", "(a.b)+.c", "(a|b)*.a.b"]
    )
    def test_same_language_as_nfa(self, query):
        nfa = compile_nfa(parse(query))
        dfa = dfa_of(query)
        for word in words("ab", 5):
            assert dfa.accepts_word(list(word)) == nfa.accepts_word(list(word)), word

    def test_deterministic_rows(self):
        dfa = dfa_of("(a|b)*.a")
        for row in dfa.delta:
            assert all(isinstance(target, int) for target in row.values())

    def test_missing_transition_rejects(self):
        dfa = dfa_of("a")
        assert not dfa.accepts_word(["z"])


class TestMinimize:
    def test_minimal_is_smaller_or_equal(self):
        dfa = dfa_of("a.b|a.c|a.b")
        minimal = minimize(dfa)
        assert minimal.num_states <= dfa.num_states

    @pytest.mark.parametrize(
        "query", ["a", "a|b", "(a.b)+", "a*.b*", "a?.b", "(a|b)*.a.b.b"]
    )
    def test_language_preserved(self, query):
        dfa = dfa_of(query)
        minimal = minimize(dfa)
        for word in words("ab", 5):
            assert minimal.accepts_word(list(word)) == dfa.accepts_word(list(word))

    def test_empty_language(self):
        # '()' then forced letter never accepts anything but epsilon... use
        # an automaton whose start is dead after minimisation: impossible
        # via the parser (no empty-set literal), so check epsilon-only.
        minimal = minimize(dfa_of("()"))
        assert minimal.accepts_word([])
        assert not minimal.accepts_word(["a"])

    def test_sink_state_dropped(self):
        minimal = minimize(dfa_of("a.b"))
        # States: start, after-a, accept. No dead state kept.
        assert minimal.num_states == 3


class TestCanonicalKey:
    @pytest.mark.parametrize(
        "first,second",
        [
            ("a.b|a.c", "a.(b|c)"),
            ("(a.b)+", "a.b.(a.b)*"),
            ("a*", "()|a.a*"),
            ("a?", "a|()"),
            ("(a|b)*", "(a*.b*)*"),
            ("a.b.c", "a.(b.c)"),
            ("a|b|c", "c|b|a"),
        ],
    )
    def test_equal_languages_share_key(self, first, second):
        assert canonical_key(first) == canonical_key(second)
        assert languages_equal(first, second)

    @pytest.mark.parametrize(
        "first,second",
        [
            ("a", "b"),
            ("a+", "a*"),
            ("a.b", "b.a"),
            ("(a.b)+", "(a.b)*"),
            ("a?", "a"),
            ("a|b", "a"),
        ],
    )
    def test_different_languages_differ(self, first, second):
        assert canonical_key(first) != canonical_key(second)
        assert not languages_equal(first, second)

    def test_key_is_stable_under_reparse(self):
        node = parse("a.(b|c)+")
        assert canonical_key(node) == canonical_key(node.to_string())
