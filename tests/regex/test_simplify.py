"""Tests for the language-preserving query simplifier."""

import itertools

import pytest

from repro.regex.dfa import languages_equal
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse
from repro.regex.simplify import is_nullable_ast, simplify


def simplified(text: str) -> str:
    return simplify(parse(text)).to_string()


class TestRules:
    @pytest.mark.parametrize(
        "before,after",
        [
            ("(a+)+", "a+"),
            ("(a*)+", "a*"),
            ("(a+)*", "a*"),
            ("(a*)*", "a*"),
            ("(a?)+", "a*"),
            ("(a?)*", "a*"),
            ("(a?)?", "a?"),
            ("(a+)?", "a*"),
            ("(a*)?", "a*"),
            ("()+", "()"),
            ("()*", "()"),
            ("()?", "()"),
            ("a|a", "a"),
            ("a|()", "a?"),
            ("a*|()", "a*"),
            ("().a.()", "a"),
            ("a|a|b", "a|b"),
            ("(((a+)+)+)+", "a+"),
            ("(a.b?)?", "(a.b?)?"),  # not nullable body: kept
            ("(a?.b?)?", "a?.b?"),  # nullable body: option dropped
        ],
    )
    def test_rewrites(self, before, after):
        assert simplified(before) == after

    def test_labels_and_epsilon_fixed(self):
        assert simplified("a") == "a"
        assert simplified("()") == "()"
        assert simplified("a.b|c") == "a.b|c"


class TestNullable:
    @pytest.mark.parametrize(
        "query,expected",
        [
            ("()", True),
            ("a", False),
            ("a?", True),
            ("a*", True),
            ("a+", False),
            ("(a?)+", True),
            ("a.b", False),
            ("a?.b?", True),
            ("a?.b", False),
            ("a|b*", True),
            ("a|b", False),
        ],
    )
    def test_matches_nfa_nullable(self, query, expected):
        node = parse(query)
        assert is_nullable_ast(node) is expected
        assert compile_nfa(node).nullable is expected


class TestLanguagePreservation:
    QUERIES = [
        "((a+)*|b?)+",
        "(a|a).(b|())",
        "((a?)?)?",
        "(a.b+)*.c?",
        "((()|a)+.b)?",
        "d.(b.c)+.c",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_same_language_by_canonical_key(self, query):
        assert languages_equal(parse(query), simplify(parse(query)))

    @pytest.mark.parametrize("query", QUERIES)
    def test_same_language_by_word_enumeration(self, query):
        original = compile_nfa(parse(query))
        rewritten = compile_nfa(simplify(parse(query)))
        for length in range(0, 5):
            for word in itertools.product("abcd", repeat=length):
                assert original.accepts_word(list(word)) == rewritten.accepts_word(
                    list(word)
                ), (query, word)

    def test_idempotent(self):
        for query in self.QUERIES:
            once = simplify(parse(query))
            assert simplify(once) == once

    def test_results_unchanged_on_graph(self, fig1):
        from repro.rpq.evaluate import eval_rpq

        for query in ["((b.c)+)+", "(b|b).c", "d.((b.c)+)?.c", "(c*)*"]:
            assert eval_rpq(fig1, simplify(parse(query))) == eval_rpq(
                fig1, query
            ), query


class TestShrinkage:
    def test_dnf_clause_count_reduced(self):
        from repro.core.dnf import to_dnf

        query = parse("(a|a).(b|b).(c|c)")
        assert len(to_dnf(query)) == 1  # dedup already handles this one
        bloated = parse("(a?).(b?).(c?)")
        assert len(to_dnf(bloated)) == 8
        assert len(to_dnf(simplify(bloated))) == 8  # legitimate clauses stay

    def test_nfa_state_count_reduced(self):
        bloated = parse("(((a+)+)+)+")
        assert (
            compile_nfa(simplify(bloated)).num_states
            <= compile_nfa(bloated).num_states
        )
