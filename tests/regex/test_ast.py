"""Tests for the regex AST value objects and smart constructors."""

import pytest

from repro.regex.ast import (
    EPSILON,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    Star,
    Union,
    concat,
    contains_closure,
    iter_labels,
    union,
)


class TestNodes:
    def test_label_requires_name(self):
        with pytest.raises(ValueError):
            Label("")

    def test_label_equality_and_hash(self):
        assert Label("a") == Label("a")
        assert Label("a") != Label("b")
        assert hash(Label("a")) == hash(Label("a"))
        assert Label("a") != EPSILON

    def test_epsilon_singleton_semantics(self):
        assert Epsilon() == EPSILON
        assert hash(Epsilon()) == hash(EPSILON)

    def test_nodes_are_immutable(self):
        with pytest.raises(AttributeError):
            Label("a").name = "b"
        with pytest.raises(AttributeError):
            Plus(Label("a")).body = Label("b")
        with pytest.raises(AttributeError):
            Concat((Label("a"), Label("b"))).parts = ()

    def test_concat_requires_two_parts(self):
        with pytest.raises(ValueError):
            Concat((Label("a"),))

    def test_union_requires_two_alternatives(self):
        with pytest.raises(ValueError):
            Union((Label("a"),))

    def test_postfix_equality_distinguishes_operators(self):
        assert Plus(Label("a")) != Star(Label("a"))
        assert Plus(Label("a")) == Plus(Label("a"))
        assert Optional(Label("a")) != Plus(Label("a"))


class TestSmartConstructors:
    def test_concat_flattens(self):
        node = concat(Label("a"), concat(Label("b"), Label("c")))
        assert isinstance(node, Concat)
        assert node.parts == (Label("a"), Label("b"), Label("c"))

    def test_concat_drops_epsilon(self):
        assert concat(Label("a"), EPSILON) == Label("a")
        assert concat(EPSILON, EPSILON) == EPSILON
        assert concat() == EPSILON

    def test_union_flattens_and_dedupes(self):
        node = union(Label("a"), union(Label("b"), Label("a")))
        assert isinstance(node, Union)
        assert node.alternatives == (Label("a"), Label("b"))

    def test_union_single_alternative_collapses(self):
        assert union(Label("a"), Label("a")) == Label("a")

    def test_union_empty_rejected(self):
        with pytest.raises(ValueError):
            union()


class TestToString:
    @pytest.mark.parametrize(
        "node,text",
        [
            (Label("a"), "a"),
            (Label("has part"), "<has part>"),
            (EPSILON, "()"),
            (concat(Label("a"), Label("b")), "a.b"),
            (union(Label("a"), Label("b")), "a|b"),
            (Plus(Label("a")), "a+"),
            (Star(concat(Label("a"), Label("b"))), "(a.b)*"),
            (Optional(Label("a")), "a?"),
            (concat(union(Label("a"), Label("b")), Label("c")), "(a|b).c"),
            (Plus(union(Label("a"), Label("b"))), "(a|b)+"),
            (union(concat(Label("a"), Label("b")), Label("c")), "a.b|c"),
        ],
    )
    def test_minimal_parentheses(self, node, text):
        assert node.to_string() == text

    def test_str_and_repr(self):
        assert str(Plus(Label("a"))) == "a+"
        assert "a+" in repr(Plus(Label("a")))


class TestInspection:
    def test_iter_labels(self):
        node = concat(Label("a"), Plus(union(Label("b"), Label("a"))))
        assert sorted(iter_labels(node)) == ["a", "a", "b"]

    def test_contains_closure(self):
        assert contains_closure(Plus(Label("a")))
        assert contains_closure(concat(Label("a"), Star(Label("b"))))
        assert contains_closure(Optional(Plus(Label("a"))))
        assert not contains_closure(Label("a"))
        assert not contains_closure(Optional(Label("a")))
        assert not contains_closure(union(Label("a"), concat(Label("b"), Label("c"))))
