"""Tests for Thompson construction and the epsilon-free LabelNFA."""

import pytest

from repro.regex.nfa import compile_nfa, thompson
from repro.regex.parser import parse


def accepts(query: str, word: str | list) -> bool:
    nfa = compile_nfa(parse(query))
    return nfa.accepts_word(list(word))


class TestWordAcceptance:
    @pytest.mark.parametrize(
        "query,word,expected",
        [
            ("a", "a", True),
            ("a", "b", False),
            ("a", "", False),
            ("a.b", "ab", True),
            ("a.b", "a", False),
            ("a|b", "a", True),
            ("a|b", "b", True),
            ("a|b", "ab", False),
            ("a+", "", False),
            ("a+", "a", True),
            ("a+", "aaaa", True),
            ("a*", "", True),
            ("a*", "aaa", True),
            ("a?", "", True),
            ("a?", "a", True),
            ("a?", "aa", False),
            ("()", "", True),
            ("()", "a", False),
            ("(a.b)+", "ab", True),
            ("(a.b)+", "abab", True),
            ("(a.b)+", "aba", False),
            ("d.(b.c)+.c", "dbcc", True),
            ("d.(b.c)+.c", "dbcbcc", True),
            ("d.(b.c)+.c", "dbc", False),
            ("(a|b)*.c", "c", True),
            ("(a|b)*.c", "abbac", True),
            ("(a*)+", "", True),
            ("(a+)+", "aa", True),
            ("(a+)+", "", False),
        ],
    )
    def test_membership(self, query, word, expected):
        assert accepts(query, word) is expected

    def test_multicharacter_labels(self):
        nfa = compile_nfa(parse("knows.<works at>"))
        assert nfa.accepts_word(["knows", "works at"])
        assert not nfa.accepts_word(["knows"])


class TestNfaStructure:
    def test_nullable_flag(self):
        assert compile_nfa(parse("a*")).nullable
        assert compile_nfa(parse("a?")).nullable
        assert compile_nfa(parse("()")).nullable
        assert compile_nfa(parse("a*.b*")).nullable
        assert not compile_nfa(parse("a")).nullable
        assert not compile_nfa(parse("a+")).nullable
        assert not compile_nfa(parse("a*.b")).nullable

    def test_first_labels(self):
        assert compile_nfa(parse("a.b")).first_labels == {"a"}
        assert compile_nfa(parse("a|b.c")).first_labels == {"a", "b"}
        assert compile_nfa(parse("a*.b")).first_labels == {"a", "b"}
        assert compile_nfa(parse("(a|b)+.c")).first_labels == {"a", "b"}
        assert compile_nfa(parse("()")).first_labels == set()

    def test_labels_alphabet(self):
        assert compile_nfa(parse("a.(b|c)+")).labels == {"a", "b", "c"}

    def test_step_on_dead_label(self):
        nfa = compile_nfa(parse("a"))
        assert nfa.step(nfa.start, "z") == frozenset()

    def test_delta_covers_reachable_states(self):
        nfa = compile_nfa(parse("(a.b)+|c*"))
        for state, row in nfa.delta.items():
            for targets in row.values():
                for target in targets:
                    assert target in nfa.delta


class TestThompson:
    def test_state_count_is_linear(self):
        eps_nfa = thompson(parse("a.b.c.d"))
        # Thompson: 2 states per label + epsilon glue only.
        assert eps_nfa.num_states == 8

    def test_epsilon_closure_transitivity(self):
        eps_nfa = thompson(parse("a*"))
        closure = eps_nfa.epsilon_closure({eps_nfa.start})
        # Start closure of a* must contain the accept state (empty match).
        assert eps_nfa.accept in closure
