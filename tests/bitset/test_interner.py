"""VertexInterner units: dense ids, stability, graph integration."""

from repro.bitset import VertexInterner
from repro.graph.multigraph import LabeledMultigraph


class TestVertexInterner:
    def test_ids_are_dense_and_in_intern_order(self):
        interner = VertexInterner()
        assert [interner.intern(v) for v in ("c", "a", "b")] == [0, 1, 2]
        assert interner.intern("a") == 1  # idempotent
        assert len(interner) == 3
        assert list(interner.vertices()) == ["c", "a", "b"]

    def test_id_of_and_vertex_of_round_trip(self):
        interner = VertexInterner()
        for vertex in (0, "0", 7, "seven"):
            interner.intern(vertex)
        for vertex in (0, "0", 7, "seven"):
            assert interner.vertex_of(interner.id_of(vertex)) == vertex
        assert interner.id_of("absent") is None

    def test_int_and_str_lookalikes_are_distinct(self):
        interner = VertexInterner()
        assert interner.intern(1) != interner.intern("1")

    def test_mask_of(self):
        interner = VertexInterner()
        interner.intern("a"), interner.intern("b"), interner.intern("c")
        assert interner.mask_of(["a", "c"]) == (1 << 0) | (1 << 2)


class TestGraphIntegration:
    def test_ids_stable_across_remove_and_re_add(self):
        graph = LabeledMultigraph()
        graph.add_edge("x", "a", "y")
        graph.add_edge("y", "a", "z")
        ids = {v: graph.interner.id_of(v) for v in ("x", "y", "z")}
        graph.remove_edge("x", "a", "y")
        graph.add_edge("x", "a", "y")
        graph.add_edge("w", "b", "x")
        for vertex, vertex_id in ids.items():
            assert graph.interner.id_of(vertex) == vertex_id
        # New vertices get fresh ids past the existing range.
        assert graph.interner.id_of("w") == len(ids)

    def test_bit_rows_track_add_and_remove(self):
        graph = LabeledMultigraph()
        graph.add_edge(0, "a", 1)
        graph.add_edge(0, "a", 2)
        id_of = graph.interner.id_of
        row = graph.bit_rows("a")[id_of(0)]
        assert row == (1 << id_of(1)) | (1 << id_of(2))
        graph.remove_edge(0, "a", 1)
        assert graph.bit_rows("a")[id_of(0)] == 1 << id_of(2)
        graph.remove_edge(0, "a", 2)
        assert id_of(0) not in graph.bit_rows("a")

    def test_rev_bit_rows_mirror_forward(self):
        graph = LabeledMultigraph()
        graph.add_edge("u", "a", "v")
        graph.add_edge("w", "a", "v")
        id_of = graph.interner.id_of
        assert graph.rev_bit_rows("a")[id_of("v")] == (
            (1 << id_of("u")) | (1 << id_of("w"))
        )

    def test_seed_interner_preassigns_ids(self):
        graph = LabeledMultigraph()
        graph.seed_interner(["n2", "n0", "n1"])
        graph.add_edge("n0", "a", "n1")
        assert graph.interner.id_of("n2") == 0
        assert graph.interner.id_of("n0") == 1
        assert graph.interner.id_of("n1") == 2
