"""PairBitmap units: algebra, membership, lazy materialisation."""

import pytest

from repro.bitset import PairBitmap, VertexInterner


def interned(*vertices):
    interner = VertexInterner()
    for vertex in vertices:
        interner.intern(vertex)
    return interner


class TestConstruction:
    def test_from_pairs_round_trips(self):
        pairs = {("a", "b"), ("a", "c"), ("d", "a")}
        bitmap = PairBitmap.from_pairs(pairs, VertexInterner())
        assert bitmap.pairs == pairs
        assert bitmap.count() == 3

    def test_add_is_idempotent(self):
        bitmap = PairBitmap()
        bitmap.add(0, 5)
        bitmap.add(0, 5)
        assert bitmap.count() == 1

    def test_update_pairs_and_add_pair(self):
        bitmap = PairBitmap(interner=VertexInterner())
        bitmap.update_pairs([("x", "y"), ("y", "z")])
        bitmap.add_pair("x", "z")
        assert bitmap.pairs == {("x", "y"), ("y", "z"), ("x", "z")}

    def test_add_row_drops_empty_masks(self):
        bitmap = PairBitmap()
        bitmap.add_row(3, 0)
        assert not bitmap.rows


class TestAlgebra:
    def test_union_matches_set_union(self):
        interner = interned(*range(8))
        left = PairBitmap.from_pairs({(0, 1), (2, 3)}, interner)
        right = PairBitmap.from_pairs({(2, 3), (4, 5)}, interner)
        left |= right
        assert left.pairs == {(0, 1), (2, 3), (4, 5)}

    def test_intersect_matches_set_intersection(self):
        interner = interned(*range(8))
        left = PairBitmap.from_pairs({(0, 1), (2, 3), (4, 5)}, interner)
        right = PairBitmap.from_pairs({(2, 3), (4, 5), (6, 7)}, interner)
        assert (left & right).pairs == {(2, 3), (4, 5)}

    def test_eq_ignores_empty_rows(self):
        left = PairBitmap({0: 6, 1: 0})
        right = PairBitmap({0: 6})
        assert left == right


class TestMembership:
    def test_contains_by_vertex_and_id(self):
        interner = VertexInterner()
        bitmap = PairBitmap.from_pairs({("s", "t")}, interner)
        assert bitmap.contains("s", "t")
        assert not bitmap.contains("t", "s")
        assert not bitmap.contains("s", "unknown")
        assert bitmap.contains_ids(interner.id_of("s"), interner.id_of("t"))

    def test_len_and_bool(self):
        bitmap = PairBitmap()
        assert not bitmap and len(bitmap) == 0
        bitmap.add(1, 2)
        assert bitmap and len(bitmap) == 1

    def test_id_pairs_enumerates_set_bits(self):
        bitmap = PairBitmap({2: (1 << 0) | (1 << 63)})
        assert sorted(bitmap.id_pairs()) == [(2, 0), (2, 63)]


class TestMaterialisation:
    def test_to_pairs_requires_an_interner(self):
        bitmap = PairBitmap({0: 1})
        with pytest.raises(ValueError):
            bitmap.to_pairs()

    def test_explicit_interner_overrides(self):
        interner = interned("a", "b")
        bitmap = PairBitmap({0: 1 << 1})
        assert bitmap.to_pairs(interner) == {("a", "b")}
