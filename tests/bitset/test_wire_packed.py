"""Packed wire encoding: hex bitmaps round-trip to exact pair/row sets."""

import json

from repro.server import protocol


PAIRS = {
    (0, 1),
    (0, 17),
    ("ann", "bob"),
    ("bob", 0),
    ("1", 1),  # int/str lookalikes must stay distinct
}

ROWS = {
    (0, 3, 0),
    (0, 5, 2),
    ("ann", "bob", 1),
    ("1", 1, 0),
}


class TestPairsRoundTrip:
    def test_list_encoding_is_unchanged(self):
        wire = protocol.pairs_to_wire(PAIRS)
        assert isinstance(wire, list)
        assert protocol.wire_to_pairs(wire) == PAIRS

    def test_packed_encoding_round_trips(self):
        wire = protocol.pairs_to_wire(PAIRS, enc="packed")
        assert wire["enc"] == "packed"
        assert protocol.wire_to_pairs(wire) == PAIRS

    def test_packed_survives_json(self):
        wire = json.loads(json.dumps(protocol.pairs_to_wire(PAIRS, enc="packed")))
        assert protocol.wire_to_pairs(wire) == PAIRS

    def test_packed_empty_relation(self):
        wire = protocol.pairs_to_wire(set(), enc="packed")
        assert protocol.wire_to_pairs(wire) == set()

    def test_packed_is_deterministic(self):
        one = protocol.pairs_to_wire(PAIRS, enc="packed")
        two = protocol.pairs_to_wire(set(PAIRS), enc="packed")
        assert one == two

    def test_packed_is_smaller_on_dense_relations(self):
        pairs = {(s, t) for s in range(40) for t in range(40) if (s + t) % 2}
        as_list = len(json.dumps(protocol.pairs_to_wire(pairs)))
        as_packed = len(json.dumps(protocol.pairs_to_wire(pairs, enc="packed")))
        assert as_packed * 5 < as_list


class TestRowsRoundTrip:
    def test_list_encoding_is_unchanged(self):
        wire = protocol.rows_to_wire(ROWS)
        assert isinstance(wire, list)
        assert set(protocol.wire_to_rows(wire)) == ROWS

    def test_packed_encoding_round_trips(self):
        wire = protocol.rows_to_wire(ROWS, enc="packed")
        assert wire["enc"] == "packed"
        assert set(protocol.wire_to_rows(wire)) == ROWS

    def test_packed_survives_json(self):
        wire = json.loads(json.dumps(protocol.rows_to_wire(ROWS, enc="packed")))
        assert set(protocol.wire_to_rows(wire)) == ROWS

    def test_packed_empty(self):
        wire = protocol.rows_to_wire([], enc="packed")
        assert set(protocol.wire_to_rows(wire)) == set()


class TestInternerTable:
    def test_vertex_table_is_self_describing(self):
        """The payload carries its own id table: ids are payload-local."""
        wire = protocol.pairs_to_wire({("x", "y")}, enc="packed")
        assert set(wire["vertices"]) == {"x", "y"}
        other = protocol.pairs_to_wire({("y", "x")}, enc="packed")
        # Same vertices, independently assigned ids -- decoding needs no
        # shared state between payloads.
        assert protocol.wire_to_pairs(other) == {("y", "x")}
