"""Cluster identity over the packed wire: thread and process backends.

The backends always negotiate ``enc: "packed"`` (PR 10), so these are
end-to-end identity gates for the packed encoding: an edge-cut cluster
must answer the workload exactly like one session -- boundary-join
queries included -- and the cut-relevant ``reaches`` fast path must
agree with the single-session watcher, before and after updates.
"""

import random

import pytest

from repro.cluster import ClusterConfig, GraphCluster, partition_graph
from repro.datasets.rmat import rmat_connected_graph
from repro.db import GraphDB

QUERIES = ["l0", "(l0)+", "l0.l1", "(l0|l1)+", "(l0.l1)+", "(l2)*"]


def build_graph():
    return rmat_connected_graph(5, 96, 3, seed=11)


@pytest.fixture(params=["thread", "process"])
def cluster(request):
    cluster = GraphCluster(
        partition_graph(build_graph(), 2, strategy="edge-cut"),
        config=ClusterConfig(shards=2, workers=1, backend=request.param),
    )
    assert cluster.partition.has_cuts
    yield cluster
    cluster.stop()


class TestPackedClusterIdentity:
    def test_workload_matches_single_session(self, cluster):
        db = GraphDB.open(build_graph())
        for query in QUERIES:
            pairs, _elapsed = cluster.submit(query).result(timeout=120)
            assert set(pairs) == set(db.execute(query)), query

    def test_reaches_matches_single_session(self, cluster):
        db = GraphDB.open(build_graph())
        rng = random.Random(11)
        vertices = sorted(build_graph().vertices(), key=str)
        for body in ["l0", "l0|l1"]:
            db.watch(body)
            cluster.watch(body)
            for source in rng.sample(vertices, 8):
                for target in rng.sample(vertices, 5):
                    assert cluster.reaches(body, source, target) == db.reaches(
                        body, source, target
                    ), (body, source, target)

    def test_identity_survives_a_cross_shard_update(self, cluster):
        db = GraphDB.open(build_graph())
        partition = cluster.partition
        vertices = sorted(build_graph().vertices(), key=str)
        edge = next(
            (source, "l1", target)
            for source in vertices
            for target in vertices
            if source != target
            and partition.shard_of(source) != partition.shard_of(target)
            and not build_graph().has_edge(source, "l1", target)
        )
        cluster.submit_update(add=[edge]).result(timeout=120)
        db.update(add=[edge])
        for query in ["(l1)+", "(l0|l1)+"]:
            pairs, _elapsed = cluster.submit(query).result(timeout=120)
            assert set(pairs) == set(db.execute(query)), query
        db.watch("l1")
        cluster.watch("l1")
        rng = random.Random(12)
        for source in rng.sample(vertices, 6):
            for target in rng.sample(vertices, 4):
                assert cluster.reaches("l1", source, target) == db.reaches(
                    "l1", source, target
                ), (source, target)
