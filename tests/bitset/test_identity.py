"""The kernel identity gate: bitmap evaluation == set evaluation.

Every hot path PR 10 rewired (NFA product BFS, DFA product BFS, label
joins, the RTC expansion) must answer *identically* on the forced
``kernel="bits"`` and ``kernel="sets"`` routes -- over randomized R-MAT
graphs, the paper's generated 10-query workloads, restricted start
sets, and mid-run edge updates.  Any divergence is a kernel bug by
definition; there is no tolerance.
"""

import random

import pytest

from repro.bitset import expand_rtc_bits
from repro.core.rtc import compute_rtc
from repro.datasets.rmat import rmat_graph
from repro.graph.multigraph import LabeledMultigraph
from repro.rpq import eval_rpq
from repro.rpq.dfa_eval import eval_rpq_dfa
from repro.rpq.label_join import eval_label_sequence
from repro.workloads import generate_workload

QUERIES = [
    "l0",
    "l0.l1",
    "(l0)+",
    "(l0)*",
    "l0?",
    "(l0|l1)+",
    "(l0.l1)+",
    "l2.(l0.l1)+",
    "(l1|l2)+.l0",
    "((l0|l1).l2)*",
]


def rmat(seed, scale=5, num_edges=120, num_labels=3):
    return rmat_graph(scale, num_edges, num_labels, seed=seed)


def both_kernels(evaluate):
    """Run ``evaluate(kernel)`` on both routes and assert identity."""
    bits = evaluate("bits")
    sets = evaluate("sets")
    assert bits == sets
    return bits


class TestQueryIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("query", QUERIES)
    def test_nfa_and_dfa_match_sets(self, seed, query):
        graph = rmat(seed)
        both_kernels(lambda kernel: eval_rpq(graph, query, kernel=kernel))
        both_kernels(lambda kernel: eval_rpq_dfa(graph, query, kernel=kernel))

    @pytest.mark.parametrize("query", ["(l0)+", "l0.l1", "(l0|l1)+", "l0?"])
    def test_restricted_starts_match_sets(self, query):
        graph = rmat(3)
        rng = random.Random(3)
        starts = rng.sample(sorted(graph.vertices(), key=str), 10) + [
            "not-a-vertex"
        ]
        both_kernels(
            lambda kernel: eval_rpq(graph, query, starts=starts, kernel=kernel)
        )
        both_kernels(
            lambda kernel: eval_rpq_dfa(
                graph, query, starts=starts, kernel=kernel
            )
        )

    @pytest.mark.parametrize("order", ["left-right", "rare-first"])
    @pytest.mark.parametrize(
        "labels", [[], ["l0"], ["l0", "l1"], ["l2", "l0", "l1"], ["l1", "l1"]]
    )
    def test_label_sequences_match_sets(self, order, labels):
        graph = rmat(4)
        both_kernels(
            lambda kernel: eval_label_sequence(
                graph, labels, order=order, kernel=kernel
            )
        )

    def test_auto_kernel_matches_forced_sets(self):
        graph = rmat(5)
        for query in QUERIES[:4]:
            assert eval_rpq(graph, query) == eval_rpq(
                graph, query, kernel="sets"
            )

    def test_unknown_kernel_is_rejected(self):
        graph = rmat(5)
        with pytest.raises(ValueError):
            eval_rpq(graph, "l0", kernel="simd")


class TestWorkloadIdentity:
    def test_full_generated_workload(self):
        """Paper-procedure workload: every 10-query set, both kernels."""
        graph = rmat(6, num_edges=160)
        for rpq_set in generate_workload(graph, num_sets=3, seed=6):
            for query in rpq_set.queries:
                both_kernels(
                    lambda kernel: eval_rpq(graph, query, kernel=kernel)
                )


class TestUpdateIdentity:
    def test_mid_run_updates_keep_identity(self):
        graph = rmat(7)
        rng = random.Random(7)
        for round_number in range(3):
            edges = sorted(graph.edges(), key=str)
            for edge in rng.sample(edges, min(10, len(edges))):
                graph.remove_edge(*edge)
            vertices = sorted(graph.vertices(), key=str)
            for _ in range(10):
                source, target = rng.sample(vertices, 2)
                label = rng.choice(["l0", "l1", "l2"])
                if not graph.has_edge(source, label, target):
                    graph.add_edge(source, label, target)
            for query in QUERIES[: 5 + round_number]:
                both_kernels(
                    lambda kernel: eval_rpq(graph, query, kernel=kernel)
                )


class TestRTCExpansion:
    @pytest.mark.parametrize("seed", [8, 9])
    def test_expand_bits_matches_expand(self, seed):
        graph = rmat(seed, num_edges=200)
        rtc = compute_rtc(graph.edges_with_label("l0"))
        expanded = expand_rtc_bits(rtc)
        assert expanded.to_pairs(expanded.interner) == rtc.expand()

    def test_expand_bits_via_method(self):
        graph = rmat(10)
        rtc = compute_rtc(graph.edges_with_label("l1"))
        assert rtc.expand_bits().pairs == rtc.expand()
