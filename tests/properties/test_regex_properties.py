"""Property-based tests for the regex substrate."""

import itertools

from hypothesis import given, settings

from strategies import regexes
from repro.core.dnf import dnf_to_regex, to_dnf
from repro.regex.dfa import canonical_key, determinize, minimize
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse

WORDS = [
    list(word)
    for length in range(0, 4)
    for word in itertools.product("abc", repeat=length)
]


@settings(max_examples=60, deadline=None)
@given(regexes())
def test_parse_to_string_roundtrip(node):
    """to_string() re-parses to the identical AST."""
    assert parse(node.to_string()) == node


@settings(max_examples=40, deadline=None)
@given(regexes())
def test_dnf_preserves_language(node):
    """The closure-literal DNF accepts exactly the original language."""
    original = compile_nfa(node)
    converted = compile_nfa(dnf_to_regex(to_dnf(node)))
    for word in WORDS:
        assert original.accepts_word(word) == converted.accepts_word(word)


@settings(max_examples=40, deadline=None)
@given(regexes())
def test_dfa_pipeline_preserves_language(node):
    """determinize + minimize accept exactly what the NFA accepts."""
    nfa = compile_nfa(node)
    dfa = minimize(determinize(nfa))
    for word in WORDS:
        assert nfa.accepts_word(word) == dfa.accepts_word(word)


@settings(max_examples=30, deadline=None)
@given(regexes())
def test_canonical_key_invariant_under_dnf(node):
    """Language-preserving rewrites keep the canonical key stable."""
    assert canonical_key(node) == canonical_key(dnf_to_regex(to_dnf(node)))


@settings(max_examples=30, deadline=None)
@given(regexes(), regexes())
def test_canonical_key_separates_languages(first, second):
    """Equal keys imply equal acceptance on sampled words (soundness)."""
    if canonical_key(first) == canonical_key(second):
        first_nfa = compile_nfa(first)
        second_nfa = compile_nfa(second)
        for word in WORDS:
            assert first_nfa.accepts_word(word) == second_nfa.accepts_word(word)


@settings(max_examples=40, deadline=None)
@given(regexes())
def test_nullable_flag_matches_empty_word(node):
    assert compile_nfa(node).nullable == compile_nfa(node).accepts_word([])


@settings(max_examples=40, deadline=None)
@given(regexes())
def test_first_labels_complete(node):
    """Any accepted non-empty word starts with a label in first_labels."""
    nfa = compile_nfa(node)
    for word in WORDS:
        if word and nfa.accepts_word(word):
            assert word[0] in nfa.first_labels
