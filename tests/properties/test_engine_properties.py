"""Property-based cross-validation of the three engines.

The strongest guarantee in the suite: on random graphs and random queries
(closures included), NoSharing, FullSharing and RTCSharing -- plus every
ablated variant of Algorithm 2 -- return identical result sets, and agree
with the networkx product-graph oracle.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import labeled_graphs, regexes
from repro.core.batch_unit import BatchUnitOptions
from repro.core.engines import FullSharingEngine, NoSharingEngine, RTCSharingEngine

ABLATIONS = [
    BatchUnitOptions(
        eliminate_redundant1=r1, eliminate_redundant2=r2, eliminate_useless2=u2
    )
    for r1, r2, u2 in itertools.product([True, False], repeat=3)
]


@settings(max_examples=50, deadline=None)
@given(labeled_graphs(), regexes())
def test_three_engines_agree(graph, node):
    expected = NoSharingEngine(graph).evaluate(node)
    assert FullSharingEngine(graph).evaluate(node) == expected
    assert RTCSharingEngine(graph).evaluate(node) == expected


@settings(max_examples=25, deadline=None)
@given(labeled_graphs(max_vertices=5, max_edges=10), regexes())
def test_engines_agree_with_networkx_oracle(graph, node):
    from oracle_helpers import oracle_networkx_eval

    expected = oracle_networkx_eval(graph, node)
    assert RTCSharingEngine(graph).evaluate(node) == expected


@settings(max_examples=25, deadline=None)
@given(
    labeled_graphs(),
    regexes(),
    st.sampled_from(ABLATIONS),
)
def test_ablated_algorithm2_never_changes_results(graph, node, options):
    reference = RTCSharingEngine(graph).evaluate(node)
    ablated = RTCSharingEngine(graph, options=options).evaluate(node)
    assert ablated == reference


@settings(max_examples=25, deadline=None)
@given(labeled_graphs(), regexes())
def test_semantic_cache_mode_changes_nothing(graph, node):
    syntactic = RTCSharingEngine(graph).evaluate(node)
    semantic = RTCSharingEngine(graph, cache_mode="semantic").evaluate(node)
    assert syntactic == semantic


@settings(max_examples=25, deadline=None)
@given(labeled_graphs(), regexes())
def test_shared_data_rtc_never_larger_than_full(graph, node):
    full = FullSharingEngine(graph)
    rtc = RTCSharingEngine(graph)
    full.evaluate(node)
    rtc.evaluate(node)
    assert rtc.shared_data_size() <= full.shared_data_size()


@settings(max_examples=20, deadline=None)
@given(labeled_graphs(), regexes())
def test_repeated_evaluation_is_idempotent(graph, node):
    engine = RTCSharingEngine(graph)
    first = engine.evaluate(node)
    second = engine.evaluate(node)  # warm caches
    assert first == second
