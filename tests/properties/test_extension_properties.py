"""Property-based tests for the extension features.

* :func:`repro.regex.simplify.simplify` preserves the language exactly
  (word enumeration + canonical key) on random expressions;
* witness extraction produces valid, accepted paths whose key set equals
  plain evaluation;
* :class:`repro.core.incremental.IncrementalRTC` stays equal to the
  batch pipeline under random insertion sequences;
* ``simplify_queries=True`` never changes engine results.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import LABELS, labeled_graphs, regexes
from repro.core.engines import RTCSharingEngine
from repro.core.incremental import IncrementalRTC
from repro.regex.dfa import canonical_key
from repro.regex.nfa import compile_nfa
from repro.regex.simplify import is_nullable_ast, simplify
from repro.rpq.evaluate import eval_rpq
from repro.rpq.witness import eval_rpq_with_witness

WORDS = [
    list(word)
    for length in range(0, 4)
    for word in itertools.product(LABELS, repeat=length)
]


@settings(max_examples=60, deadline=None)
@given(regexes())
def test_simplify_preserves_language(node):
    original = compile_nfa(node)
    rewritten = compile_nfa(simplify(node))
    for word in WORDS:
        assert original.accepts_word(word) == rewritten.accepts_word(word)


@settings(max_examples=40, deadline=None)
@given(regexes())
def test_simplify_preserves_canonical_key(node):
    assert canonical_key(node) == canonical_key(simplify(node))


@settings(max_examples=60, deadline=None)
@given(regexes())
def test_simplify_is_idempotent(node):
    once = simplify(node)
    assert simplify(once) == once


@settings(max_examples=60, deadline=None)
@given(regexes())
def test_is_nullable_matches_nfa(node):
    assert is_nullable_ast(node) == compile_nfa(node).nullable


@settings(max_examples=30, deadline=None)
@given(labeled_graphs(max_vertices=6, max_edges=14), regexes())
def test_witness_pairs_equal_eval(graph, node):
    witnesses = eval_rpq_with_witness(graph, node)
    assert set(witnesses) == eval_rpq(graph, node)


@settings(max_examples=30, deadline=None)
@given(labeled_graphs(max_vertices=6, max_edges=14), regexes())
def test_witnesses_are_accepted_paths(graph, node):
    nfa = compile_nfa(node)
    for (start, end), witness in eval_rpq_with_witness(graph, node).items():
        vertices = [witness[i] for i in range(0, len(witness), 2)]
        labels = [witness[i] for i in range(1, len(witness), 2)]
        assert vertices[0] == start and vertices[-1] == end
        for i, label in enumerate(labels):
            assert graph.has_edge(vertices[i], label, vertices[i + 1])
        assert nfa.accepts_word(labels)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.sampled_from(["a", "a.b", "a|b"]),
    st.lists(
        st.tuples(
            st.integers(0, 5), st.sampled_from(["a", "b"]), st.integers(0, 5)
        ),
        min_size=1,
        max_size=12,
    ),
)
def test_incremental_rtc_equals_batch(size, body, insertions):
    from repro.graph.multigraph import LabeledMultigraph

    graph = LabeledMultigraph()
    for vertex in range(size):
        graph.add_vertex(vertex)
    incremental = IncrementalRTC(graph, body)
    for source, label, target in insertions:
        source %= size
        target %= size
        if graph.has_edge(source, label, target):
            continue
        incremental.add_edge(source, label, target)
        expected = eval_rpq(graph, f"({body})+")
        assert incremental.plus_pairs() == expected


@settings(max_examples=30, deadline=None)
@given(labeled_graphs(), regexes())
def test_simplify_queries_option_changes_nothing(graph, node):
    plain = RTCSharingEngine(graph).evaluate(node)
    simplified = RTCSharingEngine(graph, simplify_queries=True).evaluate(node)
    assert plain == simplified
