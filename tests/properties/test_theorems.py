"""The paper's lemmas and theorems as property-based tests.

* Lemma 1:   ``R+_G = TC(G_R)``;
* Lemma 3:   ``TC(G_R)`` = expansion of ``TC(Ḡ_R)`` over SCC products;
* Theorem 1: ``R+_G`` = RTC expansion (composition of the two);
* Lemma 4:   ``(A.B)_G`` = join of ``A_G`` and ``B_G``;
* Theorem 2: ``R+_G`` as the relational expression over SCC / RTC.

Closure bodies are drawn as random *closure-free* regexes (matching the
paper's workload shape); graphs are random labeled multigraphs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import LABELS, labeled_graphs
from repro.core.reduction import edge_level_reduce
from repro.core.rtc import compute_rtc
from repro.graph.transitive_closure import tc_bfs
from repro.regex.ast import Label, Plus, concat, union
from repro.relalg.builders import concat_expression, theorem2_expression
from repro.rpq.evaluate import eval_rpq


def closure_free_bodies():
    """Concatenations/unions of labels, the paper's R shapes."""
    label_nodes = st.sampled_from([Label(name) for name in LABELS])
    sequences = st.lists(label_nodes, min_size=1, max_size=3).map(
        lambda parts: concat(*parts)
    )
    unions = st.tuples(sequences, sequences).map(lambda pair: union(*pair))
    return st.one_of(sequences, unions)


@settings(max_examples=50, deadline=None)
@given(labeled_graphs(), closure_free_bodies())
def test_lemma1_plus_equals_tc_of_reduced_graph(graph, body):
    reduced = edge_level_reduce(graph, body)
    assert eval_rpq(graph, Plus(body)) == tc_bfs(reduced)


@settings(max_examples=50, deadline=None)
@given(labeled_graphs(), closure_free_bodies())
def test_lemma3_and_theorem1_rtc_expansion(graph, body):
    reduced = edge_level_reduce(graph, body)
    rtc = compute_rtc(reduced)
    # Lemma 3: the SCC-product expansion equals TC(G_R).
    assert rtc.expand() == tc_bfs(reduced)
    # Theorem 1: and therefore equals the Kleene-plus result on G.
    assert rtc.expand() == eval_rpq(graph, Plus(body))


@settings(max_examples=50, deadline=None)
@given(labeled_graphs(), closure_free_bodies(), closure_free_bodies())
def test_lemma4_concatenation_is_join(graph, left, right):
    expression = concat_expression(eval_rpq(graph, left), eval_rpq(graph, right))
    assert expression.evaluate().to_pairs() == eval_rpq(graph, concat(left, right))


@settings(max_examples=50, deadline=None)
@given(labeled_graphs(), closure_free_bodies())
def test_theorem2_relational_reconstruction(graph, body):
    rtc = compute_rtc(edge_level_reduce(graph, body))
    assert theorem2_expression(rtc).evaluate().to_pairs() == eval_rpq(
        graph, Plus(body)
    )


@settings(max_examples=50, deadline=None)
@given(labeled_graphs(), closure_free_bodies())
def test_star_is_plus_union_identity(graph, body):
    from repro.regex.ast import Star

    plus_result = eval_rpq(graph, Plus(body))
    star_result = eval_rpq(graph, Star(body))
    identity = {(vertex, vertex) for vertex in graph.vertices()}
    assert star_result == plus_result | identity
