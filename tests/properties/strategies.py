"""Hypothesis strategies for the property-based tests (imported as `strategies`)."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import (
    EPSILON,
    Label,
    Optional,
    Plus,
    Star,
    concat,
    union,
)

LABELS = ("a", "b", "c")


@st.composite
def digraphs(draw, max_vertices: int = 10, max_edges: int = 25) -> DiGraph:
    """Random unlabeled digraphs (self-loops allowed)."""
    size = draw(st.integers(min_value=1, max_value=max_vertices))
    edge_count = draw(st.integers(min_value=0, max_value=max_edges))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, size - 1), st.integers(0, size - 1)
            ),
            min_size=edge_count,
            max_size=edge_count,
        )
    )
    graph = DiGraph.from_pairs(pairs)
    for vertex in range(size):
        graph.add_vertex(vertex)
    return graph


@st.composite
def labeled_graphs(draw, max_vertices: int = 8, max_edges: int = 20) -> LabeledMultigraph:
    """Random edge-labeled multigraphs over the 3-label alphabet."""
    size = draw(st.integers(min_value=1, max_value=max_vertices))
    edge_count = draw(st.integers(min_value=0, max_value=max_edges))
    triples = draw(
        st.lists(
            st.tuples(
                st.integers(0, size - 1),
                st.sampled_from(LABELS),
                st.integers(0, size - 1),
            ),
            min_size=edge_count,
            max_size=edge_count,
        )
    )
    graph = LabeledMultigraph()
    for vertex in range(size):
        graph.add_vertex(vertex)
    for source, label, target in triples:
        graph.add_edge_if_absent(source, label, target)
    return graph


def regexes(max_depth: int = 3):
    """Random regex ASTs over the 3-label alphabet."""
    leaves = st.one_of(
        st.sampled_from([Label(name) for name in LABELS]),
        st.just(EPSILON),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda pair: concat(*pair)),
            st.tuples(children, children).map(lambda pair: union(*pair)),
            children.map(Plus),
            children.map(Star),
            children.map(Optional),
        )

    return st.recursive(leaves, extend, max_leaves=6)
