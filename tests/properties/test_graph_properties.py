"""Property-based tests for SCC / transitive-closure invariants."""

from hypothesis import given, settings

from strategies import digraphs
from repro.core.rtc import compute_rtc
from repro.graph.scc import condense, kosaraju_scc, tarjan_scc
from repro.graph.transitive_closure import (
    tc_bfs,
    tc_nuutila,
    tc_purdom,
    tc_warshall,
)


def normalised(components):
    return sorted(tuple(sorted(component)) for component in components)


@settings(max_examples=60, deadline=None)
@given(digraphs())
def test_tarjan_equals_kosaraju(graph):
    assert normalised(tarjan_scc(graph)) == normalised(kosaraju_scc(graph))


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_scc_against_networkx(graph):
    import networkx as nx

    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(graph.vertices())
    nx_graph.add_edges_from(graph.edges())
    expected = sorted(
        tuple(sorted(component))
        for component in nx.strongly_connected_components(nx_graph)
    )
    assert normalised(tarjan_scc(graph)) == expected


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_closure_algorithms_agree(graph):
    reference = tc_bfs(graph)
    assert tc_warshall(graph) == reference
    assert tc_purdom(graph) == reference
    assert tc_nuutila(graph) == reference


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_closure_contains_edges_and_is_transitive(graph):
    closure = tc_purdom(graph)
    assert set(graph.edges()) <= closure
    by_source: dict = {}
    for source, target in closure:
        by_source.setdefault(source, set()).add(target)
    for source, target in closure:
        for onward in by_source.get(target, ()):
            assert (source, onward) in closure


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_rtc_expansion_matches_bfs_closure(graph):
    rtc = compute_rtc(graph)
    assert rtc.expand() == tc_bfs(graph)
    assert rtc.num_expanded_pairs == len(tc_bfs(graph))


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_rtc_is_never_larger_than_closure(graph):
    rtc = compute_rtc(graph)
    assert rtc.num_pairs <= max(1, rtc.num_expanded_pairs) or rtc.num_pairs == 0
    assert rtc.num_sccs <= graph.num_vertices


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_condensation_partitions_vertices(graph):
    condensation = condense(graph)
    seen: set = set()
    for members in condensation.members.values():
        for vertex in members:
            assert vertex not in seen
            seen.add(vertex)
    assert seen == set(graph.vertices())


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_condensation_edges_point_to_lower_ids(graph):
    condensation = condense(graph)
    for source, target in condensation.dag.edges():
        if source != target:
            assert target < source
