"""Unit tests for the span/tracer model in :mod:`repro.obs.trace`."""

import os
import threading

from repro.obs import (
    Tracer,
    activate,
    ambient_span,
    build_tree,
    current,
    render_trace,
)


class TestTracer:
    def test_begin_finish_records_wire_span(self):
        tracer = Tracer()
        span = tracer.begin("evaluate", engine="rtc")
        tracer.finish(span, rows=7)
        spans = tracer.spans()
        assert len(spans) == 1
        wire = spans[0]
        assert wire["name"] == "evaluate"
        assert wire["parent"] is None
        assert wire["dur"] >= 0.0
        assert wire["attrs"] == {"engine": "rtc", "rows": 7}

    def test_span_ids_are_pid_prefixed_and_unique(self):
        tracer = Tracer()
        for _ in range(50):
            tracer.finish(tracer.begin("x"))
        ids = [span["id"] for span in tracer.spans()]
        assert len(set(ids)) == 50
        prefix = f"{os.getpid():x}-"
        assert all(span_id.startswith(prefix) for span_id in ids)

    def test_parent_linkage(self):
        tracer = Tracer()
        parent = tracer.begin("request")
        child = tracer.begin("query", parent=parent.span_id)
        tracer.finish(child)
        tracer.finish(parent)
        by_name = {span["name"]: span for span in tracer.spans()}
        assert by_name["query"]["parent"] == by_name["request"]["id"]

    def test_attrs_set_after_finish_are_lost(self):
        # The tracer stores the wire dict at finish() time; late attr
        # mutation must not leak in (callers pass finish(**attrs) instead).
        tracer = Tracer()
        span = tracer.begin("query")
        tracer.finish(span)
        span.attrs["late"] = True
        assert "attrs" not in tracer.spans()[0]

    def test_record_synthesises_span_and_clamps_duration(self):
        tracer = Tracer()
        tracer.record("join_cache_hit", None, 123.0, -0.5, pairs=3)
        wire = tracer.spans()[0]
        assert wire["name"] == "join_cache_hit"
        assert wire["start"] == 123.0
        assert wire["dur"] == 0.0
        assert wire["attrs"] == {"pairs": 3}

    def test_absorb_merges_remote_spans_and_skips_junk(self):
        tracer = Tracer()
        tracer.finish(tracer.begin("request"))
        remote = [
            {"id": "abc-1", "parent": None, "name": "evaluate", "start": 1.0, "dur": 0.2},
            "not-a-span",
            None,
        ]
        tracer.absorb(remote)
        names = [span["name"] for span in tracer.spans()]
        assert names == ["request", "evaluate"]
        assert len(tracer) == 2

    def test_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("checkpoint", shard=2):
            pass
        wire = tracer.spans()[0]
        assert wire["name"] == "checkpoint"
        assert wire["attrs"] == {"shard": 2}

    def test_to_wire_shape(self):
        tracer = Tracer()
        tracer.finish(tracer.begin("request"))
        wire = tracer.to_wire()
        assert set(wire) == {"id", "spans"}
        assert wire["id"] == tracer.trace_id
        assert len(wire["spans"]) == 1


class TestAmbient:
    def test_ambient_span_is_zero_cost_without_context(self):
        assert current() is None
        with ambient_span("evaluate") as span:
            assert span is None
        assert current() is None

    def test_activate_installs_and_restores_context(self):
        tracer = Tracer()
        with activate(tracer, "root-id"):
            assert current() == (tracer, "root-id")
        assert current() is None

    def test_ambient_span_records_and_nests(self):
        tracer = Tracer()
        with activate(tracer, None):
            with ambient_span("evaluate", engine="rtc") as outer:
                assert outer is not None
                with ambient_span("rtc") as inner:
                    # Nested span parents onto the enclosing ambient span.
                    assert inner.parent_id == outer.span_id
        by_name = {span["name"]: span for span in tracer.spans()}
        assert by_name["rtc"]["parent"] == by_name["evaluate"]["id"]
        assert by_name["evaluate"]["parent"] is None

    def test_ambient_context_is_thread_local(self):
        tracer = Tracer()
        seen = []

        def probe():
            seen.append(current())

        with activate(tracer, None):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen == [None]


class TestTreeAndRendering:
    def _sample_trace(self):
        tracer = Tracer()
        root = tracer.begin("request")
        first = tracer.begin("query", parent=root.span_id)
        tracer.finish(first)
        second = tracer.begin("shard", parent=root.span_id, shard=1)
        tracer.finish(second)
        tracer.finish(root)
        return tracer.to_wire()

    def test_build_tree_single_root_with_ordered_children(self):
        roots = build_tree(self._sample_trace())
        assert len(roots) == 1
        assert roots[0]["name"] == "request"
        children = [child["name"] for child in roots[0]["children"]]
        assert children == ["query", "shard"]
        starts = [child["start"] for child in roots[0]["children"]]
        assert starts == sorted(starts)

    def test_build_tree_treats_foreign_parent_as_root(self):
        trace = {
            "id": "t",
            "spans": [
                {"id": "x-1", "parent": "not-here", "name": "orphan",
                 "start": 0.0, "dur": 0.0},
            ],
        }
        roots = build_tree(trace)
        assert [root["name"] for root in roots] == ["orphan"]

    def test_render_trace_is_indented_with_attrs(self):
        text = render_trace(self._sample_trace())
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert any("request" in line for line in lines)
        shard_line = next(line for line in lines if "shard" in line)
        assert "shard=1" in shard_line
        # Children are indented deeper than the root.
        root_line = next(line for line in lines if "request" in line)
        indent = len(shard_line) - len(shard_line.lstrip())
        assert indent > len(root_line) - len(root_line.lstrip())
