"""Unit tests for the slow-query JSONL forensics log."""

import json

from repro.obs import SlowQueryLog, Tracer


class TestSlowQueryLog:
    def test_under_threshold_is_a_no_op(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), threshold=1.0)
        assert log.maybe_record(["b.c"], elapsed=0.01) is False
        assert log.recorded == 0
        assert not path.exists()

    def test_over_threshold_appends_entry(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), threshold=0.0)
        tracer = Tracer()
        tracer.finish(tracer.begin("request"))
        assert log.maybe_record(
            ["b.c"],
            elapsed=2.5,
            trace=tracer.to_wire(),
            plans={"b.c": "plan text"},
        )
        assert log.recorded == 1
        entries = SlowQueryLog.read(str(path))
        assert len(entries) == 1
        entry = entries[0]
        assert entry["queries"] == ["b.c"]
        assert entry["elapsed"] == 2.5
        assert entry["threshold"] == 0.0
        assert entry["trace"]["id"] == tracer.trace_id
        assert entry["plans"] == {"b.c": "plan text"}

    def test_entries_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), threshold=0.0)
        log.maybe_record(["a"], elapsed=1.0)
        log.maybe_record(["b"], elapsed=2.0)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["queries"] for line in lines] == [["a"], ["b"]]

    def test_read_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), threshold=0.0)
        log.maybe_record(["a"], elapsed=1.0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ts": 1, "elapsed":')  # crash mid-append
        entries = SlowQueryLog.read(str(path))
        assert len(entries) == 1
        assert entries[0]["queries"] == ["a"]

    def test_io_failure_is_swallowed(self, tmp_path):
        log = SlowQueryLog(str(tmp_path / "no" / "such" / "dir.jsonl"), threshold=0.0)
        assert log.maybe_record(["a"], elapsed=1.0) is False
        assert log.recorded == 0
