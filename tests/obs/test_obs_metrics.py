"""Unit tests for the metrics registry and Prometheus round trip."""

import math

import pytest

from repro.obs import MetricsRegistry, get_registry, parse_prometheus, phase_totals


class TestInstruments:
    def test_counter_increments_and_renders(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_requests_total", "Requests.")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3.0
        text = registry.render_prometheus()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_counter_keeps_series_apart(self):
        registry = MetricsRegistry()
        counter = registry.counter("phase_seconds_total", labels=("phase",))
        counter.inc(0.5, phase="rtc")
        counter.inc(0.25, phase="join")
        counter.inc(0.5, phase="rtc")
        assert counter.value(phase="rtc") == 1.0
        assert counter.value(phase="join") == 0.25

    def test_label_mismatch_is_an_error(self):
        counter = MetricsRegistry().counter("c_total", labels=("phase",))
        with pytest.raises(ValueError):
            counter.inc(1, shard="0")

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("queue_depth")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3.0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency_seconds", buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        parsed = parse_prometheus(registry.render_prometheus())
        buckets = parsed["latency_seconds_bucket"]
        assert buckets[frozenset({("le", "0.01")})] == 1
        assert buckets[frozenset({("le", "0.1")})] == 2
        assert buckets[frozenset({("le", "1")})] == 3
        assert buckets[frozenset({("le", "+Inf")})] == 4
        assert parsed["latency_seconds_count"][frozenset()] == 4
        assert parsed["latency_seconds_sum"][frozenset()] == pytest.approx(5.555)

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name")


class TestRegistry:
    def test_reregistration_same_shape_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_requests_total", labels=("op",))
        second = registry.counter("repro_requests_total", labels=("op",))
        assert first is second

    def test_reregistration_different_shape_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", labels=("op",))
        with pytest.raises(ValueError, match="different shape"):
            registry.counter("repro_requests_total", labels=("shard",))
        with pytest.raises(ValueError, match="different shape"):
            registry.gauge("repro_requests_total", labels=("op",))

    def test_default_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestParsePrometheus:
    def test_round_trip_with_labels_and_escapes(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Ops.", labels=("kind",))
        counter.inc(2, kind='with "quotes"')
        counter.inc(1, kind="plain")
        parsed = parse_prometheus(registry.render_prometheus())
        series = parsed["ops_total"]
        assert series[frozenset({("kind", 'with "quotes"')})] == 2
        assert series[frozenset({("kind", "plain")})] == 1

    def test_inf_value_parses(self):
        parsed = parse_prometheus("x_bucket{le=\"+Inf\"} +Inf\n")
        assert parsed["x_bucket"][frozenset({("le", "+Inf")})] == math.inf

    def test_comments_and_garbage_skipped(self):
        text = "# HELP x y\n# TYPE x counter\nnot a sample line !!\nx 1\n"
        assert parse_prometheus(text) == {"x": {frozenset(): 1.0}}


class TestPhaseTotals:
    def test_phase_totals_reads_the_ledger(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_phase_seconds_total",
            "Wall seconds spent per engine/storage phase.",
            labels=("phase",),
        )
        counter.inc(0.125, phase="rtc")
        counter.inc(0.5, phase="join")
        assert phase_totals(registry) == {"rtc": 0.125, "join": 0.5}

    def test_phase_totals_empty_registry(self):
        assert phase_totals(MetricsRegistry()) == {}
