"""Public-API surface tests: exports, error hierarchy, package metadata."""

import importlib

import pytest

import repro
from repro.errors import (
    AdmissionError,
    DeadlineExpiredError,
    EvaluationError,
    GraphError,
    GraphFormatError,
    ProtocolError,
    ReproError,
    RPQSyntaxError,
    ServerError,
    StorageError,
    UnknownEngineError,
    UnknownLabelError,
    VertexNotFoundError,
    WorkloadError,
)

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.regex",
    "repro.rpq",
    "repro.core",
    "repro.db",
    "repro.relalg",
    "repro.datasets",
    "repro.workloads",
    "repro.bench",
    "repro.server",
    "repro.cluster",
    "repro.storage",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__")
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name}"

    def test_version(self):
        assert repro.__version__ == "1.9.0"

    def test_top_level_quickstart_names(self):
        for name in (
            "GraphDB",
            "PreparedQuery",
            "ResultSet",
            "register_engine",
            "available_engines",
            "create_engine",
            "LabeledMultigraph",
            "DiGraph",
            "RTCSharingEngine",
            "FullSharingEngine",
            "NoSharingEngine",
            "eval_rpq",
            "parse",
            "compute_rtc",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_main_module_importable(self):
        import repro.__main__  # noqa: F401  (must not execute main)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_class",
        [
            GraphError,
            GraphFormatError,
            VertexNotFoundError,
            RPQSyntaxError,
            EvaluationError,
            UnknownEngineError,
            UnknownLabelError,
            WorkloadError,
            ServerError,
            AdmissionError,
            DeadlineExpiredError,
            ProtocolError,
            StorageError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_class):
        assert issubclass(error_class, ReproError)

    def test_server_errors_carry_wire_codes(self):
        assert AdmissionError().code == "rejected"
        assert DeadlineExpiredError("late").code == "deadline"
        assert ProtocolError("bad").code == "bad_request"
        assert issubclass(AdmissionError, ServerError)
        assert AdmissionError(queue_depth=7).queue_depth == 7
        assert "7" in str(AdmissionError(queue_depth=7))

    def test_unknown_engine_is_also_value_error(self):
        error = UnknownEngineError("warp", ("no", "rtc"))
        assert isinstance(error, ValueError)
        assert error.name == "warp"
        assert error.available == ("no", "rtc")
        assert "warp" in str(error) and "rtc" in str(error)

    def test_unknown_label_carries_label(self):
        error = UnknownLabelError("zz")
        assert error.label == "zz"
        assert "zz" in str(error)

    def test_vertex_not_found_carries_vertex(self):
        error = VertexNotFoundError(42)
        assert error.vertex == 42

    def test_syntax_error_position_formatting(self):
        with_position = RPQSyntaxError("bad", position=3)
        assert "position 3" in str(with_position)
        assert with_position.position == 3
        without = RPQSyntaxError("bad")
        assert without.position is None

    def test_specific_errors_catchable_as_base(self, fig1):
        from repro.rpq.evaluate import eval_rpq

        with pytest.raises(ReproError):
            eval_rpq(fig1, "zz", strict_labels=True)


class TestDocstrings:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_every_module_documented(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__, package_name

    def test_engines_documented(self):
        from repro.core.engines import (
            FullSharingEngine,
            NoSharingEngine,
            RTCSharingEngine,
        )

        for engine_class in (NoSharingEngine, FullSharingEngine, RTCSharingEngine):
            assert engine_class.__doc__
            assert engine_class.evaluate.__doc__
