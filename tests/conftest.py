"""Shared fixtures for the test suite.

The oracle implementations live in :mod:`oracle_helpers` (same directory,
importable because pytest inserts this directory into ``sys.path``); the
fixtures here hand them to tests as plain callables.
"""

import pytest

from oracle_helpers import oracle_networkx_eval, oracle_path_enumeration
from repro.graph.builders import paper_figure1_graph
from repro.graph.multigraph import LabeledMultigraph


@pytest.fixture
def fig1():
    """The paper's Fig. 1 running-example graph."""
    return paper_figure1_graph()


@pytest.fixture
def oracle_eval():
    """The networkx product-graph oracle as a callable."""
    return oracle_networkx_eval


@pytest.fixture
def oracle_paths():
    """The path-enumeration + stdlib-re oracle as a callable."""
    return oracle_path_enumeration


@pytest.fixture
def tiny_graph():
    """A 4-vertex graph with cycles and two labels; exhaustive for oracles."""
    return LabeledMultigraph.from_edges(
        [
            (0, "a", 1),
            (1, "b", 2),
            (2, "a", 0),
            (2, "b", 3),
            (3, "a", 3),
            (1, "a", 3),
        ]
    )
