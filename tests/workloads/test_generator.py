"""Tests for the Section V-A multiple-RPQ workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import contains_closure
from repro.regex.parser import parse
from repro.workloads.generator import PAPER_SET_SIZES, generate_workload


class TestGeneration:
    def test_set_count_and_sizes(self, fig1):
        workload = generate_workload(fig1, num_sets=6, max_rpqs=10, seed=0)
        assert len(workload) == 6
        assert all(len(rpq_set) == 10 for rpq_set in workload)

    def test_r_lengths_cycle(self, fig1):
        workload = generate_workload(
            fig1, num_sets=6, lengths=(1, 2, 3), seed=0
        )
        assert [rpq_set.r_length for rpq_set in workload] == [1, 2, 3, 1, 2, 3]
        for rpq_set in workload:
            assert rpq_set.r.count(".") == rpq_set.r_length - 1

    def test_queries_are_batch_units(self, fig1):
        workload = generate_workload(fig1, num_sets=3, seed=1)
        for rpq_set in workload:
            for query in rpq_set.queries:
                node = parse(query)
                assert contains_closure(node)
                assert f"({rpq_set.r})+" in query

    def test_star_workload(self, fig1):
        workload = generate_workload(fig1, num_sets=2, closure_type="*", seed=2)
        for rpq_set in workload:
            assert all(")*" in query for query in rpq_set.queries)

    def test_invalid_closure_type(self, fig1):
        with pytest.raises(WorkloadError):
            generate_workload(fig1, closure_type="?")

    def test_determinism(self, fig1):
        first = generate_workload(fig1, num_sets=4, seed=7)
        second = generate_workload(fig1, num_sets=4, seed=7)
        assert first == second
        third = generate_workload(fig1, num_sets=4, seed=8)
        assert first != third

    def test_labels_drawn_from_graph(self, fig1):
        workload = generate_workload(fig1, num_sets=5, seed=3)
        alphabet = set(fig1.labels())
        for rpq_set in workload:
            for label in rpq_set.r.split("."):
                assert label in alphabet

    def test_empty_alphabet_rejected(self):
        with pytest.raises(WorkloadError):
            generate_workload(LabeledMultigraph())


class TestNesting:
    def test_subset_nesting(self, fig1):
        workload = generate_workload(fig1, num_sets=1, max_rpqs=10, seed=0)
        rpq_set = workload[0]
        for size in PAPER_SET_SIZES:
            subset = rpq_set.subset(size)
            assert len(subset) == size
            assert subset == list(rpq_set.queries[:size])

    def test_subset_bounds(self, fig1):
        rpq_set = generate_workload(fig1, num_sets=1, max_rpqs=4, seed=0)[0]
        with pytest.raises(ValueError):
            rpq_set.subset(0)
        with pytest.raises(ValueError):
            rpq_set.subset(5)


class TestNonEmptyFilter:
    def test_require_nonempty(self, fig1):
        workload = generate_workload(
            fig1, num_sets=6, seed=0, require_nonempty=True
        )
        from repro.rpq.evaluate import eval_rpq

        for rpq_set in workload:
            assert eval_rpq(fig1, rpq_set.r), rpq_set.r

    def test_impossible_nonempty_raises(self):
        graph = LabeledMultigraph()
        graph.add_edge(0, "a", 1)  # a.a never matches (no chains)
        with pytest.raises(WorkloadError):
            generate_workload(
                graph,
                num_sets=1,
                lengths=(3,),
                seed=0,
                require_nonempty=True,
                max_attempts=5,
            )
