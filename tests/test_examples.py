"""Smoke tests keeping every example script runnable.

The fast examples run end to end (their internal asserts double as
checks); the slower simulation examples are compile-checked and their
builder functions exercised directly, so a refactor that breaks them
fails the suite without paying their full runtime.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = ["quickstart.py", "linked_data_extraction.py"]
SLOW_EXAMPLES = [
    "social_recommendation.py",
    "protein_signaling.py",
    "streaming_updates.py",
]


@pytest.fixture(autouse=True)
def examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_fast_examples_run(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), script


@pytest.mark.parametrize("script", SLOW_EXAMPLES)
def test_slow_examples_compile(script):
    source = (EXAMPLES_DIR / script).read_text()
    compile(source, script, "exec")


def test_social_graph_builder():
    module = runpy.run_path(
        str(EXAMPLES_DIR / "social_recommendation.py"), run_name="not_main"
    )
    graph = module["build_social_graph"](seed=1)
    assert graph.num_edges == (
        module["FOLLOW_EDGES"] + module["BLOCK_EDGES"] + module["MEMBERSHIPS"]
    )
    assert set(graph.labels()) == {"follows", "blocks", "member_of"}


def test_protein_network_builder():
    module = runpy.run_path(
        str(EXAMPLES_DIR / "protein_signaling.py"), run_name="not_main"
    )
    graph = module["build_network"](seed=3)
    assert graph.num_vertices == 160
    assert "activates" in set(graph.labels())
