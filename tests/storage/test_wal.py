"""Write-ahead log unit tests: LSN discipline and torn-tail tolerance."""

import json

import pytest

from repro.errors import StorageError
from repro.storage.wal import WriteAheadLog


def wal_path(tmp_path):
    return tmp_path / "wal.jsonl"


class TestAppend:
    def test_lsns_are_monotonic_from_start(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), start_lsn=0)
        assert wal.append({"op": "update", "add": []}) == 1
        assert wal.append({"op": "update", "add": []}) == 2
        assert wal.last_lsn == 2
        wal.close()

    def test_records_survive_reopen(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.append({"op": "update", "add": [["a", "x", "b"]], "remove": []})
        wal.close()
        reopened = WriteAheadLog(wal_path(tmp_path))
        records = reopened.records()
        assert len(records) == 1
        assert records[0]["lsn"] == 1
        assert records[0]["add"] == [["a", "x", "b"]]
        assert reopened.last_lsn == 1
        reopened.close()

    def test_start_lsn_rebases_the_sequence(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), start_lsn=41)
        assert wal.append({"op": "update"}) == 42
        wal.close()
        assert WriteAheadLog(wal_path(tmp_path), start_lsn=41).last_lsn == 42

    def test_non_serialisable_record_raises_before_writing(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        with pytest.raises(StorageError):
            wal.append({"op": "update", "add": [object()]})
        assert wal.records() == []
        wal.close()


class TestTornTail:
    def append_two(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.append({"op": "update", "add": [["a", "x", "b"]]})
        wal.append({"op": "update", "add": [["b", "x", "c"]]})
        wal.close()

    def test_partial_last_line_is_truncated(self, tmp_path):
        self.append_two(tmp_path)
        path = wal_path(tmp_path)
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"lsn": 3, "op": "upd')  # no newline
        wal = WriteAheadLog(path)
        assert [record["lsn"] for record in wal.records()] == [1, 2]
        assert wal.truncated_bytes > 0
        assert path.read_bytes() == intact  # file physically truncated
        # The log stays appendable at the next LSN after the valid prefix.
        assert wal.append({"op": "update"}) == 3
        wal.close()

    def test_garbage_tail_line_is_truncated(self, tmp_path):
        self.append_two(tmp_path)
        path = wal_path(tmp_path)
        with path.open("ab") as handle:
            handle.write(b"not json at all\n")
        wal = WriteAheadLog(path)
        assert [record["lsn"] for record in wal.records()] == [1, 2]
        assert wal.truncated_bytes > 0
        wal.close()

    def test_lsn_gap_truncates_from_the_gap(self, tmp_path):
        self.append_two(tmp_path)
        path = wal_path(tmp_path)
        with path.open("ab") as handle:
            handle.write(
                (json.dumps({"lsn": 9, "op": "update"}) + "\n").encode()
            )
        wal = WriteAheadLog(path)
        assert wal.last_lsn == 2  # record 9 is out of sequence
        wal.close()

    def test_intact_log_reports_no_truncation(self, tmp_path):
        self.append_two(tmp_path)
        wal = WriteAheadLog(wal_path(tmp_path))
        assert wal.truncated_bytes == 0
        wal.close()


class TestResetAndClose:
    def test_reset_compacts_and_rebases(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.append({"op": "update"})
        wal.append({"op": "update"})
        wal.reset(2)
        assert wal.records() == []
        assert wal.last_lsn == 2
        assert wal.append({"op": "update"}) == 3
        wal.close()

    def test_close_is_idempotent_and_fences_appends(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.close()
        wal.close()
        assert wal.closed
        with pytest.raises(StorageError):
            wal.append({"op": "update"})
