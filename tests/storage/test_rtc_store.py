"""Warm-start RTC persistence: cached closures and watchers survive restart."""

from repro.db import GraphDB
from repro.storage import ShardStorage

EDGES = [
    (0, "d", 1), (1, "b", 2), (2, "c", 1), (2, "c", 3),
    (3, "b", 4), (4, "c", 3), (4, "c", 5), (6, "d", 3), (7, "d", 6),
]
CLOSURE_QUERY = "d.(b.c)+.c"


def warm_cycle(tmp_path, before_close=None, checkpoint=True):
    """Seed -> query -> (checkpoint) -> close -> reopen; returns the new db."""
    db = GraphDB.open(list(EDGES), storage=tmp_path / "data")
    db.execute(CLOSURE_QUERY)
    if before_close is not None:
        before_close(db)
    if checkpoint:
        db.checkpoint()
    db.close()
    return GraphDB.open(storage=tmp_path / "data")


class TestWarmEntries:
    def test_checkpointed_closure_comes_back_hot(self, tmp_path):
        db = warm_cycle(tmp_path)
        assert db.warm_stats["entries"] == 1
        stats = db.engine.rtc_cache.stats
        hits, misses = stats.hits, stats.misses
        db.execute(CLOSURE_QUERY)
        assert stats.hits == hits + 1
        assert stats.misses == misses  # no recompute
        db.close()

    def test_warm_answer_matches_cold_answer(self, tmp_path):
        warm = warm_cycle(tmp_path).execute(CLOSURE_QUERY)
        cold = GraphDB.open(list(EDGES)).execute(CLOSURE_QUERY)
        assert warm == cold

    def test_no_checkpoint_means_cold_start(self, tmp_path):
        db = warm_cycle(tmp_path, checkpoint=False)
        assert db.warm_stats == {"entries": 0, "watchers": 0, "stale": 0}
        db.close()

    def test_entries_staler_than_the_log_are_skipped(self, tmp_path):
        def update_after_checkpoint(db):
            db.checkpoint()
            db.update(add=[(5, "b", 6)])  # advances the WAL past the store

        db = warm_cycle(tmp_path, before_close=update_after_checkpoint,
                        checkpoint=False)
        assert db.warm_stats["entries"] == 0
        assert db.warm_stats["stale"] >= 1
        db.close()


class TestWarmWatchers:
    def test_watcher_survives_restart_and_keeps_answering(self, tmp_path):
        def attach(db):
            db.watch("b.c")
        db = warm_cycle(tmp_path, before_close=attach)
        assert db.warm_stats["watchers"] == 1
        assert "b.c" in db.watchers
        assert db.reaches("b.c", 1, 3)
        assert not db.reaches("b.c", 5, 1)
        db.close()

    def test_restored_watcher_tracks_new_updates(self, tmp_path):
        def attach(db):
            db.watch("b.c")
        db = warm_cycle(tmp_path, before_close=attach)
        assert not db.reaches("b.c", 5, 3)
        db.update(add=[(5, "b", 8), (8, "c", 3)])
        assert db.reaches("b.c", 5, 3)
        db.close()

    def test_restored_watcher_equals_freshly_computed(self, tmp_path):
        def attach(db):
            db.watch("b.c")
        db = warm_cycle(tmp_path, before_close=attach)
        fresh = GraphDB.open(list(EDGES))
        fresh.watch("b.c")
        vertices = sorted(db.graph.vertices(), key=str)
        for source in vertices:
            for target in vertices:
                assert db.reaches("b.c", source, target) == fresh.reaches(
                    "b.c", source, target
                ), (source, target)
        db.close()


class TestReplicaMerge:
    def test_extra_sessions_fold_their_caches_into_the_store(self, tmp_path):
        primary = GraphDB.open(list(EDGES), storage=tmp_path / "data")
        replica = GraphDB.open(primary.graph.copy())
        replica.execute(CLOSURE_QUERY)  # cached only on the replica
        primary.checkpoint(extra_sessions=[replica])
        primary.close()
        replica.close()

        db = GraphDB.open(storage=tmp_path / "data")
        assert db.warm_stats["entries"] == 1
        db.close()

    def test_install_warms_a_sibling_session(self, tmp_path):
        db = GraphDB.open(list(EDGES), storage=tmp_path / "data")
        db.execute(CLOSURE_QUERY)
        db.checkpoint()
        db.close()

        storage = ShardStorage(tmp_path / "data")
        state = storage.recover()
        primary = GraphDB.open(state.graph, storage=storage)
        sibling = GraphDB.open(state.graph.copy())
        warm = storage.install(sibling)
        assert warm["entries"] == 1
        misses = sibling.engine.rtc_cache.stats.misses
        sibling.execute(CLOSURE_QUERY)
        assert sibling.engine.rtc_cache.stats.misses == misses
        primary.close()
        sibling.close()
