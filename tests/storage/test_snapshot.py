"""Snapshot round trips, including the tokens the edge-list format refuses."""

import pytest

from repro.errors import StorageError
from repro.graph.multigraph import LabeledMultigraph
from repro.storage.snapshot import (
    EDGE_LIST,
    JSON_TRIPLES,
    check_persistable_edge,
    read_snapshot,
    write_snapshot,
)


def graph_identity(left: LabeledMultigraph, right: LabeledMultigraph) -> None:
    """Edges (with exact types) and vertex sets must match."""
    assert sorted(left.edges(), key=str) == sorted(right.edges(), key=str)
    assert set(left.vertices()) == set(right.vertices())
    for vertex in left.vertices():
        assert any(v == vertex and type(v) is type(vertex) for v in right.vertices())


def roundtrip(graph: LabeledMultigraph, tmp_path, lsn=7):
    entry = write_snapshot(graph, tmp_path, lsn)
    return entry, read_snapshot(tmp_path, entry)


class TestRoundTrip:
    def test_plain_graph_uses_edge_list_format(self, tmp_path):
        graph = LabeledMultigraph.from_edges(
            [(0, "a", 1), (1, "b", 2), ("v", "a", 0)]
        )
        entry, restored = roundtrip(graph, tmp_path)
        assert entry["edge_format"] == EDGE_LIST
        graph_identity(graph, restored)

    def test_int_lookalike_string_vertex_falls_back_to_json(self, tmp_path):
        # "123" (a string) and 123 (an int) are different vertices; the
        # edge-list text format cannot tell them apart, so the snapshot
        # must switch to JSON triples and keep both distinct.
        graph = LabeledMultigraph.from_edges(
            [("123", "a", 123), (123, "a", 5)]
        )
        entry, restored = roundtrip(graph, tmp_path)
        assert entry["edge_format"] == JSON_TRIPLES
        graph_identity(graph, restored)
        assert restored.has_edge("123", "a", 123)
        assert not restored.has_edge(123, "a", 123)

    def test_whitespace_label_falls_back_to_json(self, tmp_path):
        graph = LabeledMultigraph.from_edges(
            [("a", "two words", "b"), ("b", "tab\there", "c")]
        )
        entry, restored = roundtrip(graph, tmp_path)
        assert entry["edge_format"] == JSON_TRIPLES
        graph_identity(graph, restored)

    def test_isolated_vertices_ride_the_sidecar(self, tmp_path):
        graph = LabeledMultigraph.from_edges([("a", "x", "b")])
        graph.add_vertex("lonely")
        graph.add_vertex(99)
        _entry, restored = roundtrip(graph, tmp_path)
        graph_identity(graph, restored)
        assert restored.has_vertex("lonely")
        assert restored.has_vertex(99)

    def test_empty_graph_round_trips(self, tmp_path):
        graph = LabeledMultigraph()
        graph.add_vertex("only")
        _entry, restored = roundtrip(graph, tmp_path)
        graph_identity(graph, restored)


class TestPersistability:
    def test_tuple_vertex_is_rejected_before_any_write(self, tmp_path):
        graph = LabeledMultigraph.from_edges([(("tu", "ple"), "a", "b")])
        with pytest.raises(StorageError, match="cannot be persisted"):
            write_snapshot(graph, tmp_path, 1)
        assert list(tmp_path.iterdir()) == []  # nothing written

    def test_bool_vertex_is_rejected(self):
        with pytest.raises(StorageError):
            check_persistable_edge(True, "a", "b")

    def test_non_string_label_is_rejected(self):
        with pytest.raises(StorageError, match="label"):
            check_persistable_edge("a", 7, "b")

    def test_missing_snapshot_file_raises(self, tmp_path):
        graph = LabeledMultigraph.from_edges([("a", "x", "b")])
        entry = write_snapshot(graph, tmp_path, 3)
        (tmp_path / entry["edges"]).unlink()
        with pytest.raises(StorageError, match="missing snapshot"):
            read_snapshot(tmp_path, entry)
