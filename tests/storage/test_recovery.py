"""ShardStorage end-to-end: bind, log, crash, recover, checkpoint, compact."""

import json

import pytest

from repro.db import GraphDB
from repro.errors import StorageError
from repro.storage import MANIFEST_NAME, ShardStorage, has_state
from repro.storage.recovery import WAL_NAME

SEED = [("a", "x", "b"), ("b", "x", "c"), ("c", "y", "a")]


def open_fresh(tmp_path, edges=SEED):
    return GraphDB.open(list(edges), storage=tmp_path / "data")


def graph_edges(graph):
    return sorted(graph.edges(), key=str)


class TestFreshBind:
    def test_bind_writes_the_initial_checkpoint(self, tmp_path):
        db = open_fresh(tmp_path)
        assert has_state(tmp_path / "data")
        assert db.storage.last_lsn == 0
        db.close()

    def test_fresh_bind_refuses_a_stateful_directory(self, tmp_path):
        from repro.graph.multigraph import LabeledMultigraph

        open_fresh(tmp_path).close()
        with pytest.raises(StorageError, match="already holds state"):
            GraphDB(
                LabeledMultigraph.from_edges(SEED),
                storage=ShardStorage(tmp_path / "data"),
            )

    def test_open_without_source_needs_state(self, tmp_path):
        with pytest.raises(TypeError, match="no recoverable state"):
            GraphDB.open(storage=tmp_path / "empty")


class TestRecovery:
    def test_replayed_wal_reproduces_the_graph(self, tmp_path):
        db = open_fresh(tmp_path)
        db.update(add=[("c", "x", "d"), ("d", "y", "a")])
        db.update(remove=[("b", "x", "c")])
        live = graph_edges(db.graph)
        db.close()

        storage = ShardStorage(tmp_path / "data")
        state = storage.recover()
        assert graph_edges(state.graph) == live
        assert state.replayed_records == 2
        assert state.snapshot_lsn == 0
        assert state.lsn == 2
        recovered = GraphDB.open(storage=storage)
        assert recovered.execute("x+") == {("a", "b"), ("c", "d")}
        recovered.close()

    def test_recovery_without_source_after_checkpoint_only(self, tmp_path):
        db = open_fresh(tmp_path)
        db.update(add=[("c", "x", "d")])
        db.checkpoint()
        db.close()
        recovered = GraphDB.open(storage=tmp_path / "data")
        assert recovered.storage.recovered.replayed_records == 0
        assert recovered.graph.has_edge("c", "x", "d")
        recovered.close()

    def test_torn_wal_tail_loses_only_the_torn_record(self, tmp_path):
        db = open_fresh(tmp_path)
        db.update(add=[("c", "x", "d")])
        db.close()
        wal_path = tmp_path / "data" / WAL_NAME
        with wal_path.open("ab") as handle:
            handle.write(b'{"lsn": 2, "op": "update", "add": [["d", "x"')
        storage = ShardStorage(tmp_path / "data")
        state = storage.recover()
        assert state.truncated_bytes > 0
        assert state.replayed_records == 1
        assert state.graph.has_edge("c", "x", "d")
        assert not state.graph.has_vertex("e")

    def test_update_failing_midway_logs_its_applied_prefix(self, tmp_path):
        db = open_fresh(tmp_path)
        with pytest.raises(Exception):
            # second edge is a duplicate of the seed -> raises after the
            # first edge of the batch already landed
            db.update(add=[("z1", "x", "z2"), ("a", "x", "b")])
        assert db.graph.has_edge("z1", "x", "z2")
        live = graph_edges(db.graph)
        db.close()
        assert graph_edges(ShardStorage(tmp_path / "data").recover().graph) == live

    def test_non_persistable_edge_rejected_before_mutation(self, tmp_path):
        db = open_fresh(tmp_path)
        with pytest.raises(StorageError):
            db.update(add=[(("tu", "ple"), "x", "b")])
        assert not db.graph.has_vertex(("tu", "ple"))
        assert db.storage.last_lsn == 0  # nothing was logged
        db.close()


class TestCheckpoint:
    def test_checkpoint_compacts_the_wal(self, tmp_path):
        db = open_fresh(tmp_path)
        db.update(add=[("c", "x", "d")])
        db.update(add=[("d", "x", "e")])
        info = db.checkpoint()
        assert info["lsn"] == 2
        storage = ShardStorage(tmp_path / "data")
        state = storage.recover()
        assert state.snapshot_lsn == 2
        assert state.replayed_records == 0
        assert state.graph.has_edge("d", "x", "e")
        db.close()

    def test_checkpoint_removes_the_previous_generation(self, tmp_path):
        db = open_fresh(tmp_path)
        db.update(add=[("c", "x", "d")])
        db.checkpoint()
        db.update(add=[("d", "x", "e")])
        db.checkpoint()
        names = {path.name for path in (tmp_path / "data").iterdir()}
        assert "snapshot-2.edges" in names
        assert "snapshot-1.edges" not in names
        assert "snapshot-0.edges" not in names
        db.close()

    def test_manifest_is_the_commit_point(self, tmp_path):
        db = open_fresh(tmp_path)
        db.update(add=[("c", "x", "d")])
        db.checkpoint()
        db.close()
        manifest = json.loads(
            (tmp_path / "data" / MANIFEST_NAME).read_text()
        )
        assert manifest["lsn"] == 1
        assert (tmp_path / "data" / manifest["snapshot"]["edges"]).exists()

    def test_without_storage_checkpoint_raises(self):
        db = GraphDB.open(list(SEED))
        with pytest.raises(StorageError, match="no storage"):
            db.checkpoint()


class TestLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        db = open_fresh(tmp_path)
        db.close()
        db.close()
        assert db.storage.closed

    def test_stats_surface_storage_document(self, tmp_path):
        db = open_fresh(tmp_path)
        db.update(add=[("c", "x", "d")])
        document = db.stats()["storage"]
        assert document["lsn"] == 1
        assert document["last_checkpoint_lsn"] == 0
        assert document["recovered"] is False
        assert document["updates_since_checkpoint"] == 1
        db.close()
