"""GraphDB durability contract: logging, auto-checkpoint, close semantics."""

import pytest

from repro.db import GraphDB
from repro.errors import ReproError
from repro.storage import ShardStorage, read_manifest

EDGES = [("a", "x", "b"), ("b", "x", "c")]


class TestOpenSignature:
    def test_storage_accepts_a_path_string(self, tmp_path):
        db = GraphDB.open(list(EDGES), storage=str(tmp_path / "data"))
        assert isinstance(db.storage, ShardStorage)
        db.close()

    def test_storage_accepts_a_shardstorage(self, tmp_path):
        storage = ShardStorage(tmp_path / "data")
        db = GraphDB.open(list(EDGES), storage=storage)
        assert db.storage is storage
        db.close()

    def test_checkpoint_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            GraphDB.open(
                list(EDGES), storage=tmp_path / "data", checkpoint_every=0
            )

    def test_storage_less_session_has_no_durability_surface(self):
        db = GraphDB.open(list(EDGES))
        assert db.storage is None
        assert db.warm_stats == {"entries": 0, "watchers": 0, "stale": 0}
        assert "storage" not in db.stats()


class TestLogging:
    def test_every_acked_update_is_on_disk_before_return(self, tmp_path):
        db = GraphDB.open(list(EDGES), storage=tmp_path / "data")
        db.update(add=[("c", "x", "d")])
        # No close, no checkpoint: a parallel reader (the crash stand-in)
        # must already see the record.
        storage = ShardStorage(tmp_path / "data")
        assert storage.recover().graph.has_edge("c", "x", "d")
        db.close()

    def test_empty_batches_consume_no_lsn(self, tmp_path):
        db = GraphDB.open(list(EDGES), storage=tmp_path / "data")
        db.update(add=[], remove=[])
        assert db.storage.last_lsn == 0
        db.close()


class TestAutoCheckpoint:
    def test_checkpoint_every_n_compacts_automatically(self, tmp_path):
        db = GraphDB.open(
            list(EDGES), storage=tmp_path / "data", checkpoint_every=2
        )
        db.update(add=[("c", "x", "d")])
        assert read_manifest(tmp_path / "data")["lsn"] == 0  # not yet
        db.update(add=[("d", "x", "e")])
        assert read_manifest(tmp_path / "data")["lsn"] == 2  # rolled
        assert db.stats()["storage"]["updates_since_checkpoint"] == 0
        db.update(add=[("e", "x", "f")])
        assert read_manifest(tmp_path / "data")["lsn"] == 2  # counting again
        db.close()

    def test_manual_checkpoint_resets_the_counter(self, tmp_path):
        db = GraphDB.open(
            list(EDGES), storage=tmp_path / "data", checkpoint_every=3
        )
        db.update(add=[("c", "x", "d")])
        db.update(add=[("d", "x", "e")])
        db.checkpoint()
        db.update(add=[("e", "x", "f")])
        # Two away from the threshold again: no auto-checkpoint yet.
        assert read_manifest(tmp_path / "data")["lsn"] == 2
        db.close()


class TestClose:
    def test_update_after_close_raises(self, tmp_path):
        db = GraphDB.open(list(EDGES), storage=tmp_path / "data")
        db.close()
        with pytest.raises(ReproError, match="closed"):
            db.update(add=[("c", "x", "d")])

    def test_close_without_checkpoint_still_recovers_updates(self, tmp_path):
        db = GraphDB.open(list(EDGES), storage=tmp_path / "data")
        db.update(add=[("c", "x", "d")])
        db.close()  # WAL only; no checkpoint
        recovered = GraphDB.open(storage=tmp_path / "data")
        assert recovered.graph.has_edge("c", "x", "d")
        assert recovered.warm_stats["entries"] == 0  # warmth was not promised
        recovered.close()
