"""Engine-registry tests: registration, override, errors, shims."""

import pytest

from repro.core.engines import (
    FullSharingEngine,
    NoSharingEngine,
    RPQEngine,
    RTCSharingEngine,
    make_engine,
)
from repro.db import GraphDB
from repro.db.registry import (
    available_engines,
    create_engine,
    get_engine_class,
    register_engine,
    reset_registry,
    unregister_engine,
)
from repro.errors import ReproError, UnknownEngineError


@pytest.fixture(autouse=True)
def clean_registry():
    """Every test starts and ends with the built-in-only registry."""
    reset_registry()
    yield
    reset_registry()


class ReverseEngine(NoSharingEngine):
    """Toy third-party engine: evaluates on the reversed query results."""

    name = "Reverse"

    def _evaluate_node(self, node):
        return {(b, a) for a, b in super()._evaluate_node(node)}


class TestBuiltins:
    def test_defaults_registered(self):
        assert available_engines() == ("full", "no", "rtc")
        assert get_engine_class("no") is NoSharingEngine
        assert get_engine_class("full") is FullSharingEngine
        assert get_engine_class("rtc") is RTCSharingEngine

    def test_case_insensitive(self):
        assert get_engine_class("RTC") is RTCSharingEngine

    def test_create_engine(self, fig1):
        engine = create_engine("rtc", fig1, cache_mode="semantic")
        assert isinstance(engine, RTCSharingEngine)
        assert engine.rtc_cache.mode == "semantic"


class TestRegistration:
    def test_register_and_use(self, fig1):
        register_engine("reverse", ReverseEngine)
        assert "reverse" in available_engines()
        engine = create_engine("reverse", fig1)
        assert engine.evaluate("b.c") == {
            (b, a) for a, b in NoSharingEngine(fig1).evaluate("b.c")
        }

    def test_decorator_form(self):
        @register_engine("deco")
        class DecoEngine(NoSharingEngine):
            pass

        assert get_engine_class("deco") is DecoEngine

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine("rtc", ReverseEngine)

    def test_replace_override(self, fig1):
        register_engine("rtc", ReverseEngine, replace=True)
        assert get_engine_class("rtc") is ReverseEngine
        # GraphDB picks the override up by name.
        db = GraphDB.open(fig1, engine="rtc")
        assert isinstance(db.engine, ReverseEngine)

    def test_reregistering_same_class_is_idempotent(self):
        register_engine("reverse", ReverseEngine)
        register_engine("reverse", ReverseEngine)  # no replace= needed

    def test_unregister(self):
        register_engine("reverse", ReverseEngine)
        unregister_engine("reverse")
        assert "reverse" not in available_engines()
        with pytest.raises(UnknownEngineError):
            unregister_engine("reverse")

    def test_bad_names_and_classes(self):
        with pytest.raises(TypeError):
            register_engine("", ReverseEngine)
        with pytest.raises(TypeError):
            register_engine(None, ReverseEngine)
        with pytest.raises(TypeError):
            register_engine("thing", object())


class TestUnknownEngine:
    def test_error_type_and_payload(self, fig1):
        with pytest.raises(UnknownEngineError) as info:
            create_engine("warp", fig1)
        assert isinstance(info.value, ReproError)
        assert isinstance(info.value, ValueError)
        assert info.value.name == "warp"
        assert info.value.available == ("full", "no", "rtc")

    def test_graphdb_open_raises(self, fig1):
        with pytest.raises(UnknownEngineError):
            GraphDB.open(fig1, engine="warp")


class TestMakeEngineShim:
    def test_deprecated_but_working(self, fig1):
        with pytest.warns(DeprecationWarning, match="make_engine"):
            engine = make_engine("no", fig1)
        assert isinstance(engine, NoSharingEngine)

    def test_resolves_registry_additions(self, fig1):
        register_engine("reverse", ReverseEngine)
        with pytest.warns(DeprecationWarning):
            engine = make_engine("reverse", fig1)
        assert isinstance(engine, ReverseEngine)

    def test_third_party_usable_from_graphdb_without_touching_core(self, fig1):
        register_engine("reverse", ReverseEngine)
        import repro.core.engines as core_engines

        assert "reverse" not in core_engines._ENGINES  # core untouched
        db = GraphDB.open(fig1, engine="reverse")
        assert isinstance(db.engine, ReverseEngine)
        assert isinstance(db.engine, RPQEngine)


class TestMinimalDuckTypedEngine:
    """The registry's documented floor: constructible + evaluate() only."""

    class TinyEngine:
        def __init__(self, graph, **kwargs):
            self.graph = graph

        def evaluate(self, query):
            from repro.rpq.evaluate import eval_rpq

            return eval_rpq(self.graph, query)

    def test_full_session_lifecycle(self, fig1):
        register_engine("tiny", self.TinyEngine)
        with GraphDB.open(fig1, engine="tiny") as db:
            result = db.execute("b.c")
            assert result == self.TinyEngine(fig1).evaluate("b.c")
            assert result.shared_pairs == 0  # no shared_data_size(): default
            db.update(add=[(100, "b", 101)])  # no reset_cache(): tolerated
            assert db.stats()["queries_evaluated"] == 0
        assert db.closed  # close() survived the missing reset_cache too

    def test_cli_query_with_minimal_engine(self, fig1, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import dump_edge_list

        register_engine("tiny", self.TinyEngine)
        path = tmp_path / "g.txt"
        dump_edge_list(fig1, path)
        assert main(["query", str(path), "b.c", "--engine", "tiny"]) == 0
        assert "| 5" in capsys.readouterr().out
