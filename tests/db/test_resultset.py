"""ResultSet tests: set-likeness, laziness, renderings, engine parity."""

import json

import pytest

from repro.core.engines import (
    FullSharingEngine,
    NoSharingEngine,
    RTCSharingEngine,
)
from repro.core.timing import ALL_PHASES
from repro.db import GraphDB, ResultSet
from repro.db.resultset import ExecutionStats

ENGINES = {
    "no": NoSharingEngine,
    "full": FullSharingEngine,
    "rtc": RTCSharingEngine,
}

WORKLOAD = [
    "d.(b.c)+.c",
    "a.(b.c)+",
    "(b.c)+.c",
    "b.c",
    "a|d",
    "d.(b.c)*.e?",
]


class TestCrossEngineParity:
    """The acceptance-criteria round-trip: open -> prepare -> execute_many
    equals direct legacy-engine evaluation, for every engine."""

    @pytest.mark.parametrize("engine_name", sorted(ENGINES))
    def test_matches_legacy_evaluate(self, fig1, engine_name):
        db = GraphDB.open(fig1, engine=engine_name)
        prepared = [db.prepare(query) for query in WORKLOAD]
        results = db.execute_many(prepared)
        legacy = ENGINES[engine_name](fig1)
        for query, result in zip(WORKLOAD, results):
            assert result == legacy.evaluate(query), query
            assert result.engine == engine_name

    def test_engines_agree_with_each_other(self, fig1):
        all_results = [
            GraphDB.open(fig1, engine=name).execute_many(WORKLOAD)
            for name in sorted(ENGINES)
        ]
        first, *rest = all_results
        for other in rest:
            assert first == other


class TestSetLikeness:
    @pytest.fixture
    def result(self, fig1):
        return GraphDB.open(fig1).execute("d.(b.c)+.c")

    def test_equality_both_ways(self, result):
        assert result == {(7, 3), (7, 5)}
        assert result == frozenset({(7, 3), (7, 5)})
        assert not result == {(7, 3)}
        assert result != {(7, 3)}
        assert not result == "not a set"

    def test_len_contains_bool_iter(self, result):
        assert len(result) == 2
        assert (7, 3) in result and (1, 2) not in result
        assert bool(result)
        assert list(result) == [(7, 3), (7, 5)]  # deterministic order

    def test_count_property(self, result):
        assert result.count == 2

    def test_hashable(self, result):
        assert hash(result) == hash(frozenset({(7, 3), (7, 5)}))

    def test_empty_result_falsy(self, fig1):
        assert not GraphDB.open(fig1).execute("zz")  # label not in alphabet


class TestLaziness:
    def test_deferred_until_touched(self, fig1):
        db = GraphDB.open(fig1)
        result = db.execute("d.(b.c)+.c", lazy=True)
        assert not result.is_materialised
        assert db.engine.queries_evaluated == 0
        assert "deferred" in repr(result)
        assert result.pairs == {(7, 3), (7, 5)}
        assert result.is_materialised
        assert db.engine.queries_evaluated == 1

    def test_materialises_once(self, fig1):
        db = GraphDB.open(fig1)
        result = db.execute("b.c", lazy=True)
        result.pairs
        result.pairs
        assert db.engine.queries_evaluated == 1

    def test_stats_touch_materialises(self, fig1):
        result = GraphDB.open(fig1).execute("b.c", lazy=True)
        assert result.total_time >= 0.0
        assert result.is_materialised

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ResultSet("q", "rtc")
        with pytest.raises(ValueError):
            ResultSet("q", "rtc", pairs=set(), fetch=lambda: (set(), ExecutionStats()))


class TestStatistics:
    def test_phase_times_attributed_per_query(self, fig1):
        db = GraphDB.open(fig1)
        result = db.execute("d.(b.c)+.c")
        assert set(result.phase_times) <= set(ALL_PHASES)
        assert result.total_time > 0.0
        assert result.shared_pairs == 3

    def test_no_sharing_engine_reports_zero_shared(self, fig1):
        result = GraphDB.open(fig1, engine="no").execute("d.(b.c)+.c")
        assert result.shared_pairs == 0


class TestRenderings:
    def test_to_dict_and_json(self, fig1):
        result = GraphDB.open(fig1).execute("d.(b.c)+.c")
        payload = result.to_dict()
        assert payload["query"] == "d.(b.c)+.c"
        assert payload["engine"] == "rtc"
        assert payload["count"] == 2
        assert payload["pairs"] == [[7, 3], [7, 5]]
        assert payload["shared_pairs"] == 3
        assert payload["timings"]["total"] > 0.0
        assert json.loads(result.to_json(indent=2)) == json.loads(result.to_json())

    def test_to_json_stringifies_exotic_vertices(self):
        result = ResultSet("q", "rtc", pairs={((1, 2), "v")})
        decoded = json.loads(result.to_json())
        assert decoded["count"] == 1

    def test_to_dot(self, fig1):
        dot = GraphDB.open(fig1).execute("d.(b.c)+.c").to_dot()
        assert dot.startswith('digraph "Results" {')
        assert '"7" -> "3";' in dot and '"7" -> "5";' in dot
        assert dot.endswith("}")

    def test_to_dot_escapes_quotes_and_backslashes(self):
        result = ResultSet("q", "rtc", pairs={('say "hi"', "back\\slash")})
        dot = result.to_dot(name='my "graph"')
        assert 'digraph "my \\"graph\\"" {' in dot
        assert '"say \\"hi\\"" -> "back\\\\slash";' in dot
