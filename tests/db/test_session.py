"""GraphDB session lifecycle tests: open, execute, update, close."""

import pytest

from repro.core import compute_rtc
from repro.db import GraphDB
from repro.errors import GraphError, ReproError
from repro.graph.io import dump_edge_list
from repro.graph.multigraph import LabeledMultigraph
from repro.rpq import eval_rpq

EDGES = [
    (0, "d", 1), (1, "b", 2), (2, "c", 1), (2, "c", 3),
]


class TestOpen:
    def test_open_graph_binds_it(self, fig1):
        db = GraphDB.open(fig1)
        assert db.graph is fig1
        assert db.engine_name == "rtc"

    def test_open_path(self, fig1, tmp_path):
        path = tmp_path / "g.txt"
        dump_edge_list(fig1, path)
        db = GraphDB.open(str(path))
        assert db.graph.num_edges == fig1.num_edges
        assert db.execute("d.(b.c)+.c") == {(7, 3), (7, 5)}

    def test_open_pathlib_path(self, fig1, tmp_path):
        path = tmp_path / "g.txt"
        dump_edge_list(fig1, path)
        assert GraphDB.open(path).graph.num_vertices == fig1.num_vertices

    def test_open_edge_iterable(self):
        db = GraphDB.open(EDGES)
        assert db.graph.num_edges == len(EDGES)
        assert db.execute("d.(b.c)+") == {(0, 1), (0, 3)}

    def test_engine_selection_and_kwargs(self, fig1):
        db = GraphDB.open(fig1, engine="RTC", cache_mode="semantic")
        assert db.engine_name == "rtc"
        assert db.engine.rtc_cache.mode == "semantic"

    def test_constructor_rejects_non_graph(self):
        with pytest.raises(TypeError, match="GraphDB.open"):
            GraphDB("not a graph")


class TestExecute:
    def test_execute_accepts_ast(self, fig1):
        from repro.regex.parser import parse

        assert GraphDB.open(fig1).execute(parse("b.c")) == eval_rpq(fig1, "b.c")

    def test_execute_many_shares_caches(self, fig1):
        db = GraphDB.open(fig1)
        db.execute_many(["d.(b.c)+.c", "a.(b.c)+", "(b.c)+.c"])
        stats = db.engine.rtc_cache.stats
        assert stats.entries == 1
        assert stats.hits == 3 and stats.misses == 1

    def test_explain_matches_prepared(self, fig1):
        db = GraphDB.open(fig1)
        assert db.explain("d.(b.c)+.c") == db.prepare("d.(b.c)+.c").explain()


class TestUpdate:
    def test_add_edges_visible_to_queries(self):
        db = GraphDB.open([("a", "f", "b")])
        assert ("a", "c") not in db.execute("f+")
        db.update(add=[("b", "f", "c")])
        assert ("a", "c") in db.execute("f+")

    def test_update_invalidates_engine_cache(self):
        db = GraphDB.open([("a", "f", "b")])
        db.execute("f+")
        assert db.engine.shared_data_size() > 0
        db.update(add=[("b", "f", "c")])
        assert db.engine.shared_data_size() == 0  # stale RTC dropped

    def test_remove_edge(self):
        db = GraphDB.open([("a", "f", "b"), ("b", "f", "c")])
        db.update(remove=[("b", "f", "c")])
        assert db.execute("f+") == {("a", "b")}
        with pytest.raises(GraphError):
            db.update(remove=[("b", "f", "c")])

    def test_remove_keeps_vertices(self):
        db = GraphDB.open([("a", "f", "b")])
        db.update(remove=[("a", "f", "b")])
        assert db.graph.num_vertices == 2
        assert db.graph.num_edges == 0

    def test_partial_failure_keeps_session_consistent(self):
        db = GraphDB.open([("a", "f", "b")])
        db.execute("f+")  # warm the engine cache
        watcher = db.watch("f")
        with pytest.raises(GraphError):
            # The add applies, then the bad removal raises mid-batch.
            db.update(add=[("b", "f", "c")], remove=[("x", "f", "y")])
        # Queries see the partially-applied graph, not a stale cache.
        assert db.execute("f+") == {("a", "b"), ("a", "c"), ("b", "c")}
        assert watcher.plus_pairs() == compute_rtc(
            eval_rpq(db.graph, "f")
        ).expand()

    def test_duplicate_add_raises_but_resets_cache(self):
        db = GraphDB.open([("a", "f", "b")])
        db.execute("f+")
        with pytest.raises(GraphError):
            db.update(add=[("a", "f", "b")])
        assert db.engine.shared_data_size() == 0  # cache dropped anyway


class TestWatchers:
    def test_watch_is_idempotent_per_body(self):
        db = GraphDB.open([("a", "f", "b")])
        assert db.watch("f") is db.watch("(f)")  # same normalised body
        assert list(db.watchers) == ["f"]

    def test_multiple_watchers_stay_consistent(self):
        db = GraphDB.open([("a", "f", "b"), ("b", "g", "c")])
        wf = db.watch("f")
        wg = db.watch("f|g")
        db.update(add=[("b", "f", "a"), ("c", "g", "a"), ("c", "f", "d")])
        db.update(remove=[("a", "f", "b")])
        for watcher, body in ((wf, "f"), (wg, "f|g")):
            expected = compute_rtc(eval_rpq(db.graph, body)).expand()
            assert watcher.plus_pairs() == expected

    def test_watcher_sees_new_vertices(self):
        db = GraphDB.open([("a", "f", "b")])
        watcher = db.watch("f*")  # nullable body: identity spans V
        db.update(add=[("x", "f", "y")])
        assert watcher.reaches("x", "x")
        assert watcher.reaches("x", "y")

    def test_session_reaches_probe(self):
        db = GraphDB.open([("a", "f", "b"), ("b", "f", "c")])
        assert db.reaches("f", "a", "c") is True
        assert db.reaches("f", "c", "a") is False
        db.update(add=[("c", "f", "a")])
        assert db.reaches("f", "c", "a") is True  # locked, update-aware
        assert list(db.watchers) == ["f"]  # probes share one watcher


class TestLifecycle:
    def test_context_manager_closes(self, fig1):
        with GraphDB.open(fig1) as db:
            db.execute("b.c")
            assert not db.closed
        assert db.closed
        with pytest.raises(ReproError, match="closed"):
            db.execute("b.c")
        with pytest.raises(ReproError, match="closed"):
            db.prepare("b.c")

    def test_close_idempotent(self, fig1):
        db = GraphDB.open(fig1)
        db.close()
        db.close()

    def test_lazy_result_on_closed_session_raises(self, fig1):
        db = GraphDB.open(fig1)
        result = db.execute("b.c", lazy=True)
        db.close()
        with pytest.raises(ReproError, match="closed"):
            result.pairs

    def test_stats_shape(self, fig1):
        db = GraphDB.open(fig1)
        db.execute("b.c")
        db.watch("b.c")
        stats = db.stats()
        assert stats["engine"] == "rtc"
        assert stats["graph"] == {"vertices": 10, "edges": 16, "labels": 6}
        assert stats["queries_evaluated"] == 1
        assert stats["watchers"] == ["b.c"]

    def test_repr(self, fig1):
        db = GraphDB.open(fig1)
        assert "open" in repr(db)
        db.close()
        assert "closed" in repr(db)

    def test_isolated_vertices_preserved_via_graph_binding(self):
        graph = LabeledMultigraph()
        graph.add_vertex("lonely")
        graph.add_edge("a", "f", "b")
        db = GraphDB.open(graph)
        assert db.graph.num_vertices == 3
