"""PreparedQuery tests: decomposition payload, plan stability, execution."""

import pytest

from repro.db import GraphDB, PreparedQuery
from repro.errors import RPQSyntaxError


@pytest.fixture
def db(fig1):
    return GraphDB.open(fig1)


class TestPreparation:
    def test_carries_ast_and_clauses(self, db):
        prepared = db.prepare("d.(b.c)+.c|a")
        assert isinstance(prepared, PreparedQuery)
        assert prepared.text == prepared.node.to_string()
        assert prepared.num_clauses == 2
        assert prepared.clauses == ("d.(b.c)+.c", "a")
        assert len(prepared.units) == 2
        assert len(prepared.batch_units) == 1

    def test_batch_unit_decomposition(self, db):
        (unit,) = db.prepare("d.(b.c)+.c").batch_units
        assert unit.pre.to_string() == "d"
        assert unit.r.to_string() == "b.c"
        assert unit.type == "+"
        assert unit.post_labels == ("c",)

    def test_syntax_error_at_prepare_time(self, db):
        with pytest.raises(RPQSyntaxError):
            db.prepare("a..b")

    def test_db_backref(self, db):
        assert db.prepare("a").db is db


class TestExplain:
    def test_plan_stability(self, db):
        prepared = db.prepare("d.(b.c)+.c|a")
        first = prepared.explain()
        second = prepared.explain()
        assert first == second  # frozen dataclasses, value equality
        assert first.describe() == second.describe()

    def test_plan_reflects_cache_warming(self, db):
        prepared = db.prepare("d.(b.c)+.c")
        assert prepared.explain().clauses[0].rtc_cached is False
        prepared.execute()
        plan = prepared.explain()
        assert plan.clauses[0].rtc_cached is True
        # Everything except the cache flag is unchanged.
        assert plan.query == prepared.text
        assert plan.clauses[0].r == "b.c"

    def test_explain_is_side_effect_free(self, db):
        prepared = db.prepare("d.(b.c)+.c")
        for _ in range(3):
            prepared.explain()
        assert db.engine.rtc_cache.stats.lookups == 0
        assert db.engine.queries_evaluated == 0


class TestExecution:
    def test_execute_and_call_are_aliases(self, db):
        prepared = db.prepare("d.(b.c)+.c")
        assert prepared.execute() == prepared() == {(7, 3), (7, 5)}

    def test_repeated_execution_hits_cache(self, db):
        prepared = db.prepare("d.(b.c)+.c")
        prepared.execute()
        prepared.execute()
        stats = db.engine.rtc_cache.stats
        assert stats.misses == 1 and stats.hits == 1

    def test_executes_through_session_engine(self, db, oracle_eval):
        prepared = db.prepare("a.(b.c)+")
        assert prepared.execute() == oracle_eval(db.graph, "a.(b.c)+")

    def test_lazy_execution(self, db):
        result = db.prepare("b.c").execute(lazy=True)
        assert not result.is_materialised
        assert len(result) == 5
        assert result.is_materialised

    def test_repr(self, db):
        text = repr(db.prepare("d.(b.c)+.c|a"))
        assert "clauses=2" in text and "batch_units=1" in text
