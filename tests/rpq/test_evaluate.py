"""Tests for automaton-based RPQ evaluation (Example 2 semantics)."""

import pytest

from repro.errors import UnknownLabelError
from repro.graph.builders import labeled_cycle, labeled_path
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse
from repro.rpq.counters import OpCounters
from repro.rpq.evaluate import candidate_starts, eval_rpq, eval_rpq_from


class TestBasicQueries:
    def test_single_label(self, fig1):
        assert eval_rpq(fig1, "d") == {(7, 4)}

    def test_concatenation(self, fig1):
        assert eval_rpq(fig1, "b.c") == {(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)}

    def test_union(self, fig1):
        assert eval_rpq(fig1, "d|e") == {(7, 4), (8, 9)}

    def test_missing_label_is_empty(self, fig1):
        assert eval_rpq(fig1, "zz") == set()

    def test_strict_labels_raises(self, fig1):
        with pytest.raises(UnknownLabelError):
            eval_rpq(fig1, "zz", strict_labels=True)

    def test_epsilon_is_identity(self, fig1):
        assert eval_rpq(fig1, "()") == {(v, v) for v in fig1.vertices()}


class TestClosures:
    def test_paper_example2(self, fig1):
        assert eval_rpq(fig1, "d.(b.c)+.c") == {(7, 5), (7, 3)}

    def test_kleene_plus_excludes_reflexive_on_dag(self):
        graph = labeled_path(3)
        assert eval_rpq(graph, "a+") == {
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)
        }

    def test_kleene_star_adds_identity(self):
        graph = labeled_path(2)
        plus = eval_rpq(graph, "a+")
        star = eval_rpq(graph, "a*")
        assert star == plus | {(v, v) for v in graph.vertices()}

    def test_cycle_closure_is_complete(self):
        graph = labeled_cycle(4)
        assert eval_rpq(graph, "a+") == {(i, j) for i in range(4) for j in range(4)}

    def test_nested_closures(self, fig1):
        # (b.c)+ repeated is still (b.c)+ territory; ((b.c)+)+ == (b.c)+.
        assert eval_rpq(fig1, "((b.c)+)+") == eval_rpq(fig1, "(b.c)+")

    def test_visited_state_dedup_terminates(self):
        # Two interlocking cycles would loop forever without the
        # per-(vertex, state) visited set.
        graph = LabeledMultigraph.from_edges(
            [(0, "a", 1), (1, "a", 0), (1, "a", 2), (2, "a", 1)]
        )
        result = eval_rpq(graph, "a+")
        assert result == {(i, j) for i in range(3) for j in range(3)}


class TestStartRestriction:
    def test_starts_parameter(self, fig1):
        full = eval_rpq(fig1, "b.c")
        restricted = eval_rpq(fig1, "b.c", starts=[2])
        assert restricted == {pair for pair in full if pair[0] == 2}

    def test_unknown_start_ignored(self, fig1):
        assert eval_rpq(fig1, "b.c", starts=[999]) == set()

    def test_nullable_with_starts(self, fig1):
        result = eval_rpq(fig1, "b?", starts=[2, 999])
        assert (2, 2) in result
        assert (2, 3) in result and (2, 5) in result
        assert all(pair[0] == 2 for pair in result)

    def test_candidate_starts_uses_first_labels(self, fig1):
        nfa = compile_nfa(parse("d.a"))
        assert candidate_starts(fig1, nfa) == {7}


class TestEvalFrom:
    def test_single_traversal(self, fig1):
        nfa = compile_nfa(parse("b.c"))
        assert eval_rpq_from(fig1, nfa, 2) == {4, 6}

    def test_zero_length_not_included(self, fig1):
        nfa = compile_nfa(parse("c*"))
        ends = eval_rpq_from(fig1, nfa, 1)
        assert 1 not in ends  # callers add reflexive pairs themselves
        assert 2 in ends

    def test_counters_populated(self, fig1):
        counters = OpCounters()
        eval_rpq(fig1, "b.c", counters=counters)
        assert counters.traversal_starts > 0
        assert counters.states_expanded > 0
        assert counters.edges_scanned > 0
        assert counters.pairs_emitted == 5


class TestAgainstOracles:
    QUERIES = ["a", "a.b", "a|b", "a+", "(a.b)+", "a*.b", "b.a?", "(a|b)+"]

    @pytest.mark.parametrize("query", QUERIES)
    def test_networkx_oracle(self, tiny_graph, oracle_eval, query):
        assert eval_rpq(tiny_graph, query) == oracle_eval(tiny_graph, query)

    @pytest.mark.parametrize("query", QUERIES)
    def test_path_enumeration_oracle(self, tiny_graph, oracle_paths, query):
        expected = oracle_paths(tiny_graph, query, max_length=8)
        assert eval_rpq(tiny_graph, query) == expected

    @pytest.mark.parametrize("query", QUERIES)
    def test_fig1_oracle(self, fig1, oracle_eval, query):
        assert eval_rpq(fig1, query) == oracle_eval(fig1, query)
