"""Tests for the shared operation counters."""

from repro.rpq.counters import OpCounters


class TestOpCounters:
    def test_defaults_zero(self):
        counters = OpCounters()
        assert counters.total() == 0
        assert all(value == 0 for value in counters.as_dict().values())

    def test_merge_accumulates(self):
        first = OpCounters(edges_scanned=3, dup_checks=2)
        second = OpCounters(edges_scanned=4, pairs_emitted=5)
        first.merge(second)
        assert first.edges_scanned == 7
        assert first.dup_checks == 2
        assert first.pairs_emitted == 5

    def test_total_sums_everything(self):
        counters = OpCounters(edges_scanned=1, states_expanded=2, join_probes=4)
        assert counters.total() == 7

    def test_as_dict_keys_are_field_names(self):
        keys = set(OpCounters().as_dict())
        assert "edges_scanned" in keys
        assert "closure_walk_starts" in keys
        assert "cartesian_outputs" in keys
