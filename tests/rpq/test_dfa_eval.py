"""Tests for the DFA-based evaluation variant."""

import pytest

from repro.regex.dfa import determinize
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse
from repro.rpq.counters import OpCounters
from repro.rpq.dfa_eval import eval_dfa_from, eval_rpq_dfa
from repro.rpq.evaluate import eval_rpq

QUERIES = [
    "a",
    "b.c",
    "d.(b.c)+.c",
    "(b.c)*",
    "(b|c)+",
    "a?.(b.c)+",
    "c*.b",
    "()",
    "zz",
]


class TestAgreementWithNfa:
    @pytest.mark.parametrize("query", QUERIES)
    def test_fig1(self, fig1, query):
        assert eval_rpq_dfa(fig1, query) == eval_rpq(fig1, query), query

    @pytest.mark.parametrize("query", ["a+", "(a.b)+", "a.b+.a"])
    def test_tiny_graph_with_oracle(self, tiny_graph, oracle_eval, query):
        assert eval_rpq_dfa(tiny_graph, query) == oracle_eval(tiny_graph, query)

    def test_random_agreement(self):
        import random

        from repro.graph.multigraph import LabeledMultigraph

        rng = random.Random(5)
        for _trial in range(8):
            graph = LabeledMultigraph()
            size = rng.randint(2, 8)
            for vertex in range(size):
                graph.add_vertex(vertex)
            for _ in range(rng.randint(1, 20)):
                graph.add_edge_if_absent(
                    rng.randrange(size), rng.choice("ab"), rng.randrange(size)
                )
            query = rng.choice(["a+", "(a.b)+", "a.b*", "(a|b)+.a", "b?.a+"])
            assert eval_rpq_dfa(graph, query) == eval_rpq(graph, query), query


class TestStartsAndCounters:
    def test_starts_restriction(self, fig1):
        full = eval_rpq_dfa(fig1, "b.c")
        restricted = eval_rpq_dfa(fig1, "b.c", starts=[2])
        assert restricted == {pair for pair in full if pair[0] == 2}

    def test_nullable_with_starts(self, fig1):
        result = eval_rpq_dfa(fig1, "b?", starts=[2])
        assert (2, 2) in result

    def test_precompiled_dfa_accepted(self, fig1):
        dfa = determinize(compile_nfa(parse("b.c")))
        assert eval_rpq_dfa(fig1, dfa) == eval_rpq(fig1, "b.c")

    def test_counters(self, fig1):
        counters = OpCounters()
        eval_rpq_dfa(fig1, "d.(b.c)+.c", counters=counters)
        assert counters.states_expanded > 0
        assert counters.edges_scanned > 0

    def test_eval_dfa_from_single_start(self, fig1):
        dfa = determinize(compile_nfa(parse("b.c")))
        assert eval_dfa_from(fig1, dfa, 2) == {4, 6}

    def test_dfa_frontier_not_larger_than_nfa(self, fig1):
        # The determinised product expands at most as many pairs as the
        # NFA product on the same traversal (one state per subset).
        nfa_counters = OpCounters()
        dfa_counters = OpCounters()
        eval_rpq(fig1, "d.(b.c)+.c", counters=nfa_counters)
        eval_rpq_dfa(fig1, "d.(b.c)+.c", counters=dfa_counters)
        assert dfa_counters.states_expanded <= nfa_counters.states_expanded
