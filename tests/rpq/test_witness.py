"""Tests for witness-path extraction."""

import pytest

from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse
from repro.rpq.evaluate import eval_rpq
from repro.rpq.witness import eval_rpq_with_witness


def witness_labels(witness):
    return [witness[i] for i in range(1, len(witness), 2)]


def witness_vertices(witness):
    return [witness[i] for i in range(0, len(witness), 2)]


def assert_valid_witness(graph, query, pair, witness):
    vertices = witness_vertices(witness)
    labels = witness_labels(witness)
    assert vertices[0] == pair[0]
    assert vertices[-1] == pair[1]
    for i, label in enumerate(labels):
        assert graph.has_edge(vertices[i], label, vertices[i + 1]), witness
    assert compile_nfa(parse(query)).accepts_word(labels), (query, witness)


QUERIES = ["b.c", "d.(b.c)+.c", "(b|c)+", "a", "c*.b"]


class TestWitnesses:
    @pytest.mark.parametrize("query", QUERIES)
    def test_pairs_match_eval_rpq(self, fig1, query):
        witnesses = eval_rpq_with_witness(fig1, query)
        assert set(witnesses) == eval_rpq(fig1, query)

    @pytest.mark.parametrize("query", QUERIES)
    def test_every_witness_is_valid(self, fig1, query):
        for pair, witness in eval_rpq_with_witness(fig1, query).items():
            assert_valid_witness(fig1, query, pair, witness)

    def test_paper_example2_witness(self, fig1):
        witnesses = eval_rpq_with_witness(fig1, "d.(b.c)+.c")
        # The shortest witness for (7, 5) is p1 of Fig. 2: d b c c.
        assert witness_labels(witnesses[(7, 5)]) == ["d", "b", "c", "c"]
        assert witness_vertices(witnesses[(7, 5)]) == [7, 4, 1, 2, 5]

    def test_witnesses_are_shortest(self, fig1):
        # (7, 3) has witnesses of length 6 (dbcbcc) and longer; BFS must
        # return the 6-edge one.
        witnesses = eval_rpq_with_witness(fig1, "d.(b.c)+.c")
        assert len(witness_labels(witnesses[(7, 3)])) == 6

    def test_nullable_reflexive_witness(self, fig1):
        witnesses = eval_rpq_with_witness(fig1, "(b.c)*")
        assert witnesses[(9, 9)] == (9,)
        # Non-trivial pairs still get real paths.
        assert len(witnesses[(2, 4)]) == 5

    def test_starts_restriction(self, fig1):
        witnesses = eval_rpq_with_witness(fig1, "b.c", starts=[2])
        assert set(witnesses) == {(2, 4), (2, 6)}

    def test_random_graphs(self, tiny_graph):
        for query in ["a+", "(a.b)+", "a.b*"]:
            witnesses = eval_rpq_with_witness(tiny_graph, query)
            assert set(witnesses) == eval_rpq(tiny_graph, query)
            for pair, witness in witnesses.items():
                assert_valid_witness(tiny_graph, query, pair, witness)
