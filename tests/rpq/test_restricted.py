"""Tests for EvalRestrictedRPQ (single-start Post evaluation)."""

import pytest

from repro.rpq.evaluate import eval_rpq
from repro.rpq.restricted import RestrictedEvaluator, as_label_sequence
from repro.regex.parser import parse


class TestAsLabelSequence:
    @pytest.mark.parametrize(
        "query,expected",
        [
            ("()", []),
            ("a", ["a"]),
            ("a.b.c", ["a", "b", "c"]),
            ("a.().b", ["a", "b"]),
        ],
    )
    def test_pure_sequences(self, query, expected):
        assert as_label_sequence(parse(query)) == expected

    @pytest.mark.parametrize("query", ["a|b", "a.(b|c)", "a?", "a.b?"])
    def test_non_sequences(self, query):
        assert as_label_sequence(parse(query)) is None


class TestRestrictedEvaluator:
    def test_rejects_closures(self):
        with pytest.raises(ValueError):
            RestrictedEvaluator("a+")
        with pytest.raises(ValueError):
            RestrictedEvaluator("a.(b.c)*")

    def test_label_sequence_fast_path(self, fig1):
        evaluator = RestrictedEvaluator("b.c")
        assert evaluator.ends_from(fig1, 2) == {4, 6}
        assert evaluator.ends_from(fig1, 8) == set()

    def test_epsilon(self, fig1):
        evaluator = RestrictedEvaluator("()")
        assert evaluator.is_epsilon
        assert evaluator.nullable
        assert evaluator.ends_from(fig1, 5) == {5}

    def test_union_post_uses_automaton(self, fig1):
        evaluator = RestrictedEvaluator("b|c")
        assert not evaluator.is_epsilon
        assert evaluator.ends_from(fig1, 2) == {3, 5}

    def test_nullable_automaton_includes_start(self, fig1):
        evaluator = RestrictedEvaluator("c?")
        assert evaluator.nullable
        assert evaluator.ends_from(fig1, 1) == {1, 2}

    def test_matches_eval_rpq_per_start(self, fig1):
        for query in ["c", "b.c", "b|c", "c.c?"]:
            evaluator = RestrictedEvaluator(query)
            reference = eval_rpq(fig1, query, starts=list(fig1.vertices()))
            for start in fig1.vertices():
                expected = {end for (s, end) in reference if s == start}
                assert evaluator.ends_from(fig1, start) == expected, (query, start)
