"""Tests for the join-based closure-free clause evaluator."""

import pytest

from repro.graph.builders import labeled_path, layered_graph
from repro.graph.multigraph import LabeledMultigraph
from repro.rpq.counters import OpCounters
from repro.rpq.evaluate import eval_rpq
from repro.rpq.label_join import eval_label_sequence, eval_labels_from

ORDERS = ["left-right", "rare-first"]


class TestEvalLabelSequence:
    @pytest.mark.parametrize("order", ORDERS)
    def test_matches_automaton_on_fig1(self, fig1, order):
        for labels in [["b"], ["b", "c"], ["d", "b"], ["c", "c"], ["b", "c", "c"]]:
            query = ".".join(labels)
            assert eval_label_sequence(fig1, labels, order=order) == eval_rpq(
                fig1, query
            ), (labels, order)

    @pytest.mark.parametrize("order", ORDERS)
    def test_empty_sequence_is_identity(self, fig1, order):
        assert eval_label_sequence(fig1, [], order=order) == {
            (v, v) for v in fig1.vertices()
        }

    @pytest.mark.parametrize("order", ORDERS)
    def test_dead_label_short_circuits(self, fig1, order):
        assert eval_label_sequence(fig1, ["b", "zz", "c"], order=order) == set()

    def test_unknown_order_rejected(self, fig1):
        with pytest.raises(ValueError):
            eval_label_sequence(fig1, ["b"], order="sideways")

    def test_rare_first_anchors_at_rarest(self):
        # Two dense layers of x/y edges followed by a single rare z edge:
        # anchoring at z prunes the dense prefix to the one surviving path.
        graph = layered_graph([8, 8, 1], ["x", "y"])
        bottleneck = graph.num_vertices - 1
        graph.add_edge(bottleneck, "z", bottleneck + 1)
        left = OpCounters()
        rare = OpCounters()
        expected = eval_label_sequence(
            graph, ["x", "y", "z"], order="left-right", counters=left
        )
        actual = eval_label_sequence(
            graph, ["x", "y", "z"], order="rare-first", counters=rare
        )
        assert actual == expected
        assert rare.edges_scanned < left.edges_scanned

    def test_orders_agree_on_random_graphs(self):
        import random

        rng = random.Random(11)
        for _trial in range(10):
            edges = set()
            for _ in range(40):
                edges.add(
                    (
                        rng.randrange(8),
                        rng.choice("xyz"),
                        rng.randrange(8),
                    )
                )
            graph = LabeledMultigraph.from_edges(edges)
            labels = [rng.choice("xyz") for _ in range(rng.randint(1, 4))]
            assert eval_label_sequence(
                graph, labels, order="left-right"
            ) == eval_label_sequence(graph, labels, order="rare-first")


class TestEvalLabelsFrom:
    def test_single_start(self, fig1):
        assert eval_labels_from(fig1, ["b", "c"], 2) == {4, 6}

    def test_empty_labels_returns_start(self, fig1):
        assert eval_labels_from(fig1, [], 3) == {3}

    def test_dead_end(self, fig1):
        assert eval_labels_from(fig1, ["e", "e"], 8) == set()

    def test_matches_full_evaluation(self, fig1):
        full = eval_label_sequence(fig1, ["b", "c"])
        for start in fig1.vertices():
            ends = eval_labels_from(fig1, ["b", "c"], start)
            assert ends == {end for (s, end) in full if s == start}

    def test_path_graph_frontier(self):
        graph = labeled_path(4, "a")
        assert eval_labels_from(graph, ["a", "a", "a"], 0) == {3}
        assert eval_labels_from(graph, ["a"] * 5, 0) == set()
