"""Tests for the command-line interface."""

import json
import sys
import textwrap

import pytest

from repro.cli import build_parser, main
from repro.graph.builders import paper_figure1_graph
from repro.graph.io import dump_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig1.txt"
    dump_edge_list(paper_figure1_graph(), path)
    return str(path)


class TestQueryCommand:
    def test_counts_table(self, graph_file, capsys):
        assert main(["query", graph_file, "d.(b.c)+.c"]) == 0
        out = capsys.readouterr().out
        assert "d.(b.c)+.c" in out
        assert "| 2" in out  # two result pairs
        assert "shared data: 3 pairs" in out

    def test_show_pairs(self, graph_file, capsys):
        assert main(["query", graph_file, "d.(b.c)+.c", "--show-pairs"]) == 0
        out = capsys.readouterr().out
        assert "7\t3" in out and "7\t5" in out

    @pytest.mark.parametrize("engine", ["no", "full", "rtc"])
    def test_engines(self, graph_file, capsys, engine):
        assert main(["query", graph_file, "b.c", "--engine", engine]) == 0
        assert "| 5" in capsys.readouterr().out

    def test_multiple_queries_share(self, graph_file, capsys):
        code = main(["query", graph_file, "d.(b.c)+.c", "a.(b.c)+"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("(b.c)+") == 2

    def test_semantic_cache_flag(self, graph_file):
        assert main(["query", graph_file, "a.(b.c)+", "--semantic-cache"]) == 0

    def test_syntax_error_exit_code(self, graph_file, capsys):
        assert main(["query", graph_file, "a..b"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["query", "/nonexistent/graph.txt", "a"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_engine_exit_code(self, graph_file, capsys):
        assert main(["query", graph_file, "a", "--engine", "warp"]) == 1
        err = capsys.readouterr().err
        assert "unknown engine" in err and "rtc" in err

    def test_json_output(self, graph_file, capsys):
        assert main(["query", graph_file, "d.(b.c)+.c", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "rtc"
        assert payload["shared_pairs"] == 3
        (result,) = payload["results"]
        assert result["query"] == "d.(b.c)+.c"
        assert result["count"] == 2
        assert [7, 3] in result["pairs"] and [7, 5] in result["pairs"]
        assert result["timings"]["total"] >= 0.0

    def test_third_party_engine_via_load(self, graph_file, tmp_path, capsys):
        (tmp_path / "my_engines.py").write_text(
            textwrap.dedent(
                """
                from repro.core.engines import NoSharingEngine
                from repro.db import register_engine

                @register_engine("echo", replace=True)
                class EchoEngine(NoSharingEngine):
                    name = "Echo"
                """
            )
        )
        sys.path.insert(0, str(tmp_path))
        try:
            code = main(
                ["query", graph_file, "b.c", "--engine", "echo",
                 "--load", "my_engines", "--json"]
            )
            assert code == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["engine"] == "echo"
            assert payload["results"][0]["count"] == 5
        finally:
            sys.path.remove(str(tmp_path))
            from repro.db.registry import reset_registry

            reset_registry()
            sys.modules.pop("my_engines", None)

    def test_load_missing_module(self, graph_file, capsys):
        assert main(["query", graph_file, "a", "--load", "no_such_mod"]) == 2
        assert "error" in capsys.readouterr().err


class TestReduceCommand:
    def test_fig12_quantities(self, graph_file, capsys):
        assert main(["reduce", graph_file, "b.c"]) == 0
        out = capsys.readouterr().out
        assert "|V_R|" in out
        assert "RTC pairs" in out
        assert "| 3" in out  # 3 RTC pairs
        assert "| 10" in out  # 10 closure pairs

    def test_json_output(self, graph_file, capsys):
        assert main(["reduce", graph_file, "b.c", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["body"] == "b.c"
        assert payload["rtc_pairs"] == 3
        assert payload["full_closure_pairs"] == 10


class TestStatsCommand:
    def test_table4_row(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "| 10" in out  # vertices
        assert "| 16" in out  # edges

    def test_json_output(self, graph_file, capsys):
        assert main(["stats", graph_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["vertices"] == 10
        assert payload["edges"] == 16
        assert payload["labels"] == 6


class TestExplainCommand:
    def test_plan_printed(self, graph_file, capsys):
        assert main(["explain", graph_file, "d.(b.c)+.c|a"]) == 0
        out = capsys.readouterr().out
        assert "clauses: 2" in out
        assert "Pre  = d" in out
        assert "EvalRPQwithoutKC" in out

    def test_bad_query(self, graph_file, capsys):
        assert main(["explain", graph_file, "a..b"]) == 1
        assert "error" in capsys.readouterr().err


class TestDotCommand:
    def test_graph_view(self, graph_file, capsys):
        assert main(["dot", graph_file]) == 0
        assert "digraph G {" in capsys.readouterr().out

    def test_reduced_view(self, graph_file, capsys):
        assert main(["dot", graph_file, "--query", "b.c", "--view", "reduced"]) == 0
        assert '"2" -> "4";' in capsys.readouterr().out

    def test_condensation_view(self, graph_file, capsys):
        code = main(
            ["dot", graph_file, "--query", "b.c", "--view", "condensation"]
        )
        assert code == 0
        assert "s0" in capsys.readouterr().out

    def test_nfa_view(self, graph_file, capsys):
        assert main(["dot", graph_file, "--query", "a.b+", "--view", "nfa"]) == 0
        assert "doublecircle" in capsys.readouterr().out

    def test_view_requires_query(self, graph_file, capsys):
        assert main(["dot", graph_file, "--view", "reduced"]) == 2
        assert "required" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engine_accepts_any_registered_name(self):
        # --engine is registry-checked at open time, not an argparse choice,
        # so third-party names parse fine.
        args = build_parser().parse_args(
            ["query", "g.txt", "a", "--engine", "warp"]
        )
        assert args.engine == "warp"

    def test_engine_help_lists_registry(self):
        query_parser = build_parser()._subparsers._group_actions[0].choices["query"]
        help_text = query_parser.format_help()
        for name in ("no", "full", "rtc"):
            assert name in help_text
