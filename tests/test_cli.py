"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.builders import paper_figure1_graph
from repro.graph.io import dump_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig1.txt"
    dump_edge_list(paper_figure1_graph(), path)
    return str(path)


class TestQueryCommand:
    def test_counts_table(self, graph_file, capsys):
        assert main(["query", graph_file, "d.(b.c)+.c"]) == 0
        out = capsys.readouterr().out
        assert "d.(b.c)+.c" in out
        assert "| 2" in out  # two result pairs
        assert "shared data: 3 pairs" in out

    def test_show_pairs(self, graph_file, capsys):
        assert main(["query", graph_file, "d.(b.c)+.c", "--show-pairs"]) == 0
        out = capsys.readouterr().out
        assert "7\t3" in out and "7\t5" in out

    @pytest.mark.parametrize("engine", ["no", "full", "rtc"])
    def test_engines(self, graph_file, capsys, engine):
        assert main(["query", graph_file, "b.c", "--engine", engine]) == 0
        assert "| 5" in capsys.readouterr().out

    def test_multiple_queries_share(self, graph_file, capsys):
        code = main(["query", graph_file, "d.(b.c)+.c", "a.(b.c)+"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("(b.c)+") == 2

    def test_semantic_cache_flag(self, graph_file):
        assert main(["query", graph_file, "a.(b.c)+", "--semantic-cache"]) == 0

    def test_syntax_error_exit_code(self, graph_file, capsys):
        assert main(["query", graph_file, "a..b"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["query", "/nonexistent/graph.txt", "a"]) == 2
        assert "error" in capsys.readouterr().err


class TestReduceCommand:
    def test_fig12_quantities(self, graph_file, capsys):
        assert main(["reduce", graph_file, "b.c"]) == 0
        out = capsys.readouterr().out
        assert "|V_R|" in out
        assert "RTC pairs" in out
        assert "| 3" in out  # 3 RTC pairs
        assert "| 10" in out  # 10 closure pairs


class TestStatsCommand:
    def test_table4_row(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "| 10" in out  # vertices
        assert "| 16" in out  # edges


class TestExplainCommand:
    def test_plan_printed(self, graph_file, capsys):
        assert main(["explain", graph_file, "d.(b.c)+.c|a"]) == 0
        out = capsys.readouterr().out
        assert "clauses: 2" in out
        assert "Pre  = d" in out
        assert "EvalRPQwithoutKC" in out

    def test_bad_query(self, graph_file, capsys):
        assert main(["explain", graph_file, "a..b"]) == 1
        assert "error" in capsys.readouterr().err


class TestDotCommand:
    def test_graph_view(self, graph_file, capsys):
        assert main(["dot", graph_file]) == 0
        assert "digraph G {" in capsys.readouterr().out

    def test_reduced_view(self, graph_file, capsys):
        assert main(["dot", graph_file, "--query", "b.c", "--view", "reduced"]) == 0
        assert '"2" -> "4";' in capsys.readouterr().out

    def test_condensation_view(self, graph_file, capsys):
        code = main(
            ["dot", graph_file, "--query", "b.c", "--view", "condensation"]
        )
        assert code == 0
        assert "s0" in capsys.readouterr().out

    def test_nfa_view(self, graph_file, capsys):
        assert main(["dot", graph_file, "--query", "a.b+", "--view", "nfa"]) == 0
        assert "doublecircle" in capsys.readouterr().out

    def test_view_requires_query(self, graph_file, capsys):
        assert main(["dot", graph_file, "--view", "reduced"]) == 2
        assert "required" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "g.txt", "a", "--engine", "warp"])
