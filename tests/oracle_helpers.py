"""Independent oracle evaluators for the test suite.

Two oracle evaluators live here, both deliberately avoiding the library's
own evaluation path so that agreement is meaningful evidence:

* :func:`oracle_networkx_eval` -- determinise the query, build the
  product graph of (vertex, DFA-state) nodes with networkx and use
  ``nx.descendants`` for reachability.  Shares only the regex->DFA
  compiler with the library.
* :func:`oracle_path_enumeration` -- enumerate every path up to a length
  bound and match its label word with Python's :mod:`re` engine (labels
  mapped to single characters).  Shares *nothing* with the library except
  the parser; only usable on tiny graphs.

Both are exposed as plain functions through fixtures so tests in any
subdirectory can use them without sys.path tricks.
"""

from __future__ import annotations

import itertools

from repro.graph.builders import paper_figure1_graph
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import (
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
    Union,
)
from repro.regex.dfa import determinize
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse

# ---------------------------------------------------------------------------
# oracle 1: networkx product-graph reachability
# ---------------------------------------------------------------------------


def oracle_networkx_eval(graph: LabeledMultigraph, query) -> set:
    """Evaluate an RPQ via a networkx product graph (independent path)."""
    import networkx as nx

    dfa = determinize(compile_nfa(parse(query)))
    product = nx.DiGraph()
    for source, label, target in graph.edges():
        for state, row in enumerate(dfa.delta):
            next_state = row.get(label)
            if next_state is not None:
                product.add_edge((source, state), (target, next_state))

    nullable = dfa.start in dfa.accepts
    result: set = set()
    for vertex in graph.vertices():
        if nullable:
            result.add((vertex, vertex))
        start_node = (vertex, dfa.start)
        if start_node not in product:
            continue
        for end_vertex, state in nx.descendants(product, start_node):
            if state in dfa.accepts:
                result.add((vertex, end_vertex))
    return result


# ---------------------------------------------------------------------------
# oracle 2: path enumeration + Python re
# ---------------------------------------------------------------------------


def _ast_to_python_re(node: RegexNode, char_of: dict[str, str]) -> str:
    if isinstance(node, Epsilon):
        return ""
    if isinstance(node, Label):
        return char_of[node.name]
    if isinstance(node, Concat):
        return "".join(_ast_to_python_re(part, char_of) for part in node.parts)
    if isinstance(node, Union):
        inner = "|".join(
            _ast_to_python_re(alt, char_of) for alt in node.alternatives
        )
        return f"(?:{inner})"
    if isinstance(node, Plus):
        return f"(?:{_ast_to_python_re(node.body, char_of)})+"
    if isinstance(node, Star):
        return f"(?:{_ast_to_python_re(node.body, char_of)})*"
    if isinstance(node, Optional):
        return f"(?:{_ast_to_python_re(node.body, char_of)})?"
    raise TypeError(f"unknown node {node!r}")


def oracle_path_enumeration(
    graph: LabeledMultigraph, query, max_length: int = 6
) -> set:
    """Evaluate an RPQ by brute-force path enumeration + ``re`` matching.

    Complete only for results witnessed by a path of ``<= max_length``
    edges; callers use tiny graphs where that bound is exhaustive
    (every simple-cycle-free witness is shorter than ``|V| * states``).
    """
    import re as stdlib_re

    node = parse(query)
    labels = sorted(set(graph.labels()) | set(_labels_of(node)))
    # Map labels to single printable characters for the stdlib engine.
    char_of = {
        label: chr(0x100 + index) for index, label in enumerate(labels)
    }
    pattern = stdlib_re.compile(_ast_to_python_re(node, char_of) or "(?:)")

    result: set = set()
    for start in graph.vertices():
        # BFS over (vertex, word) prefixes up to the bound.
        frontier = [(start, "")]
        for _depth in range(max_length + 1):
            next_frontier = []
            for vertex, word in frontier:
                if pattern.fullmatch(word):
                    result.add((start, vertex))
                if len(word) < max_length:
                    for label, target in graph.out_edges(vertex):
                        next_frontier.append((target, word + char_of[label]))
            frontier = next_frontier
            if not frontier:
                break
    return result


def _labels_of(node: RegexNode):
    from repro.regex.ast import iter_labels

    return iter_labels(node)


def enumerate_words(alphabet, max_length: int):
    """All words over ``alphabet`` up to ``max_length`` (tests' language cmp)."""
    for length in range(max_length + 1):
        yield from itertools.product(alphabet, repeat=length)


