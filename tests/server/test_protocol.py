"""Wire-protocol unit tests: framing, error mapping, pair encoding."""

import json

import pytest

from repro.errors import (
    AdmissionError,
    DeadlineExpiredError,
    ProtocolError,
    RPQSyntaxError,
    ServerError,
)
from repro.server import protocol


class TestFraming:
    def test_encode_is_one_terminated_line(self):
        line = protocol.encode({"op": "ping", "id": 3})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert json.loads(line) == {"op": "ping", "id": 3}

    def test_roundtrip(self):
        message = {"op": "query", "queries": ["a.(b.c)+"], "timeout": 1.5}
        assert protocol.decode_line(protocol.encode(message)) == message

    def test_decode_accepts_str(self):
        assert protocol.decode_line('{"op":"ping"}') == {"op": "ping"}

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            protocol.decode_line(b"{nope\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON objects"):
            protocol.decode_line(b"[1, 2]\n")

    def test_decode_rejects_oversized_line(self):
        line = b'{"op": "' + b"x" * protocol.MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.decode_line(line)


class TestResponses:
    def test_ok_response_echoes_id(self):
        assert protocol.ok_response(7, pong=True) == {
            "ok": True,
            "pong": True,
            "id": 7,
        }

    def test_ok_response_without_id(self):
        assert "id" not in protocol.ok_response(None)

    def test_error_response_from_exception(self):
        response = protocol.error_response(1, AdmissionError())
        assert response["ok"] is False
        assert response["error"]["code"] == "rejected"
        assert "retry" in response["error"]["message"]

    @pytest.mark.parametrize(
        ("error", "code"),
        [
            (AdmissionError(), "rejected"),
            (DeadlineExpiredError("late"), "deadline"),
            (ProtocolError("bad"), "bad_request"),
            (RPQSyntaxError("oops", position=2), "syntax"),
            (ValueError("boom"), "internal"),
        ],
    )
    def test_error_payload_codes(self, error, code):
        assert protocol.error_payload(error)["code"] == code

    @pytest.mark.parametrize(
        ("code", "expected"),
        [
            ("rejected", AdmissionError),
            ("deadline", DeadlineExpiredError),
            ("bad_request", ProtocolError),
            ("syntax", RPQSyntaxError),
            ("evaluation", ServerError),
            ("internal", ServerError),
        ],
    )
    def test_exception_roundtrip(self, code, expected):
        error = protocol.exception_from_payload(
            {"code": code, "message": "why"}
        )
        assert isinstance(error, expected)
        assert "why" in str(error)

    def test_unknown_code_keeps_code(self):
        error = protocol.exception_from_payload({"code": "weird"})
        assert isinstance(error, ServerError)
        assert error.code == "weird"


class TestPairs:
    def test_wire_order_is_deterministic(self):
        pairs = {(3, 1), (1, 2), (10, 0)}
        assert protocol.pairs_to_wire(pairs) == [[1, 2], [10, 0], [3, 1]]

    def test_roundtrip_preserves_set(self):
        pairs = {(3, 1), ("a", "b"), (1, 2)}
        wire = json.loads(json.dumps(protocol.pairs_to_wire(pairs)))
        assert protocol.wire_to_pairs(wire) == pairs

    def test_empty(self):
        assert protocol.pairs_to_wire(set()) == []
        assert protocol.wire_to_pairs([]) == set()


class TestClusterErrorWire:
    """Structured ClusterError fields survive the wire round trip."""

    def test_subcode_shards_detail_roundtrip(self):
        from repro.errors import ClusterError

        error = ClusterError(
            "cannot remove it",
            code="cluster.unknown_edge",
            shards=(0, 2),
            detail=["u", "b", "v"],
        )
        payload = json.loads(json.dumps(protocol.error_payload(error)))
        assert payload["code"] == "cluster.unknown_edge"
        assert payload["shards"] == [0, 2]
        assert payload["detail"] == ["u", "b", "v"]
        back = protocol.exception_from_payload(payload)
        assert isinstance(back, ClusterError)
        assert back.code == "cluster.unknown_edge"
        assert back.shards == (0, 2)
        assert back.detail == ["u", "b", "v"]

    def test_bare_cluster_code_still_maps(self):
        from repro.errors import ClusterError

        back = protocol.exception_from_payload(
            {"code": "cluster", "message": "m"}
        )
        assert isinstance(back, ClusterError)
        assert back.shards == ()
        assert back.detail is None


class TestRowWire:
    def test_rows_sort_deterministically(self):
        rows = {("s", 2, 1), ("a", "x", 0), ("s", 1, 3)}
        wire = protocol.rows_to_wire(rows)
        assert wire == [["a", "x", 0], ["s", 1, 3], ["s", 2, 1]]

    def test_roundtrip_preserves_set(self):
        rows = {("s", "v", 4), ("t", "w", 0)}
        wire = json.loads(json.dumps(protocol.rows_to_wire(rows)))
        assert protocol.wire_to_rows(wire) == rows

    def test_empty(self):
        assert protocol.rows_to_wire(set()) == []
        assert protocol.wire_to_rows([]) == set()
