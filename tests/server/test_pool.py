"""ClientPool: leasing, reuse, replacement of broken clients, close."""

import threading

import pytest

from repro.db import GraphDB
from repro.errors import ServerError
from repro.graph.builders import paper_figure1_graph
from repro.server import Client, ClientPool, ServerThread


@pytest.fixture
def server():
    with ServerThread(GraphDB.open(paper_figure1_graph())) as handle:
        yield handle


class TestLeasing:
    def test_lease_query_release(self, server):
        with ClientPool(*server.address, size=2) as pool:
            with pool.lease() as client:
                assert client.query("b.c").count > 0
            assert pool.stats == {"idle": 1, "leased": 0, "size": 2}

    def test_connections_are_reused(self, server):
        with ClientPool(*server.address, size=2) as pool:
            with pool.lease() as first:
                pass
            with pool.lease() as second:
                assert second is first
            assert pool.stats["idle"] == 1

    def test_concurrent_leases_dial_up_to_size(self, server):
        with ClientPool(*server.address, size=3) as pool:
            clients = [pool.acquire() for _ in range(3)]
            assert len({id(client) for client in clients}) == 3
            assert pool.stats == {"idle": 0, "leased": 3, "size": 3}
            for client in clients:
                pool.release(client)
            assert pool.stats == {"idle": 3, "leased": 0, "size": 3}

    def test_exhausted_pool_blocks_until_release(self, server):
        with ClientPool(*server.address, size=1) as pool:
            held = pool.acquire()
            acquired = []

            def waiter():
                with pool.lease() as client:
                    acquired.append(client)

            thread = threading.Thread(target=waiter)
            thread.start()
            thread.join(timeout=0.2)
            assert thread.is_alive()  # blocked on the one connection
            pool.release(held)
            thread.join(timeout=10)
            assert acquired == [held]

    def test_exhausted_pool_times_out(self, server):
        pool = ClientPool(*server.address, size=1, lease_timeout=0.05)
        try:
            pool.acquire()
            with pytest.raises(ServerError, match="became free"):
                pool.acquire()
        finally:
            pool.lease_timeout = None
            pool.close()


class TestReplacement:
    def test_poisoned_client_is_discarded_and_replaced(self, server):
        with ClientPool(*server.address, size=1) as pool:
            with pool.lease() as client:
                client._poison("simulated transport failure")
            assert pool.stats == {"idle": 0, "leased": 0, "size": 1}
            with pool.lease() as fresh:
                assert fresh is not client
                assert fresh.query("b.c").count > 0

    def test_closed_client_is_discarded(self, server):
        with ClientPool(*server.address, size=1) as pool:
            with pool.lease() as client:
                client.close()
            with pool.lease() as fresh:
                assert fresh is not client
                assert fresh.ping() >= 1


class TestLifecycle:
    def test_connect_parses_address(self, server):
        host, port = server.address
        with ClientPool.connect(f"{host}:{port}", size=1) as pool:
            with pool.lease() as client:
                assert isinstance(client, Client)
                assert client.ping() >= 1

    def test_closed_pool_refuses_leases(self, server):
        pool = ClientPool(*server.address, size=1)
        pool.close()
        with pytest.raises(ServerError, match="closed"):
            pool.acquire()

    def test_late_release_closes_the_client(self, server):
        pool = ClientPool(*server.address, size=1)
        client = pool.acquire()
        pool.close()
        pool.release(client)
        assert client.closed

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            ClientPool("127.0.0.1", 1, size=0)
