"""Scheduler unit tests: grouping, admission, deadlines, updates."""

import time
from concurrent.futures import Future

import pytest

from repro.core.cache import make_key_function
from repro.db import GraphDB
from repro.errors import AdmissionError, DeadlineExpiredError, ServerError
from repro.regex.parser import parse
from repro.server.scheduler import (
    QueryJob,
    SharingScheduler,
    closure_group_key,
    group_jobs,
    make_worker_engines,
)

KEY = make_key_function("syntactic")


def job(text: str) -> QueryJob:
    node = parse(text)
    return QueryJob(
        text=text,
        node=node,
        group_key=closure_group_key(node, KEY),
        future=Future(),
    )


class TestGroupKey:
    def test_same_body_same_key(self):
        first = closure_group_key(parse("a.(b.c)+"), KEY)
        second = closure_group_key(parse("d.(b.c)+.c"), KEY)
        assert first == second != ""

    def test_different_bodies_differ(self):
        assert closure_group_key(parse("a.(b.c)+"), KEY) != closure_group_key(
            parse("a.(c.b)+"), KEY
        )

    def test_closure_free_is_empty(self):
        assert closure_group_key(parse("a.b.c"), KEY) == ""

    def test_nested_bodies_contribute(self):
        flat = closure_group_key(parse("(b)+"), KEY)
        nested = closure_group_key(parse("((b)+.c)+"), KEY)
        assert flat != nested
        assert KEY(parse("b")) in nested

    def test_semantic_mode_identifies_equal_languages(self):
        semantic = make_key_function("semantic")
        assert closure_group_key(
            parse("(a.b|a.c)+"), semantic
        ) == closure_group_key(parse("(a.(b|c))+"), semantic)


class TestKeyFunctionMode:
    def test_semantic_session_batches_by_semantic_keys(self, fig1):
        """Regression: the scheduler's key function must follow the
        session's cache mode even though the cache is empty (and hence
        falsy -- it defines __len__) at construction time."""
        db = GraphDB.open(fig1, engine="rtc", cache_mode="semantic")
        scheduler = SharingScheduler(db, start=False)
        assert closure_group_key(
            parse("(a.b|a.c)+"), scheduler._key_function
        ) == closure_group_key(parse("(a.(b|c))+"), scheduler._key_function)

    def test_syntactic_session_keeps_syntactic_keys(self, fig1):
        db = GraphDB.open(fig1, engine="rtc")
        scheduler = SharingScheduler(db, start=False)
        assert closure_group_key(
            parse("(a.b|a.c)+"), scheduler._key_function
        ) != closure_group_key(parse("(a.(b|c))+"), scheduler._key_function)


class TestGrouping:
    def test_groups_by_key_preserving_order(self):
        jobs = [
            job("a.(b.c)+"),
            job("x.y"),
            job("d.(b.c)+.c"),
            job("(c.b)+"),
        ]
        groups = group_jobs(jobs)
        assert [[item.text for item in group] for group in groups] == [
            ["a.(b.c)+", "d.(b.c)+.c"],
            ["x.y"],
            ["(c.b)+"],
        ]

    def test_single_group(self):
        groups = group_jobs([job("(b.c)+"), job("(b.c)+")])
        assert len(groups) == 1 and len(groups[0]) == 2

    def test_uncomputed_keys_group_with_closure_free(self):
        pending = QueryJob(text="(b.c)+", node=parse("(b.c)+"), future=Future())
        assert pending.group_key is None
        groups = group_jobs([pending, job("x.y")])
        assert len(groups) == 1


class TestWorkerEngines:
    def test_engines_share_primary_cache(self, fig1):
        db = GraphDB.open(fig1, engine="rtc")
        engines = make_worker_engines(db, 3)
        assert len(engines) == 3
        for engine in engines:
            assert engine is not db.engine
            assert engine.rtc_cache is db.engine.rtc_cache

    def test_no_engine_has_no_cache_to_share(self, fig1):
        db = GraphDB.open(fig1, engine="no")
        engines = make_worker_engines(db, 2)
        assert all(not hasattr(engine, "rtc_cache") for engine in engines)


class TestAdmission:
    def test_queue_full_rejects(self, fig1):
        scheduler = SharingScheduler(
            GraphDB.open(fig1), workers=1, max_queue=2, start=False
        )
        scheduler.submit("a.(b.c)+")
        scheduler.submit("a.(b.c)+")
        with pytest.raises(AdmissionError, match="queue is full"):
            scheduler.submit("a.(b.c)+")
        assert scheduler.metrics.rejected == 1
        assert scheduler.metrics.admitted == 2
        scheduler.stop()

    def test_rejected_update_when_full(self, fig1):
        scheduler = SharingScheduler(
            GraphDB.open(fig1), workers=1, max_queue=1, start=False
        )
        scheduler.submit("a.(b.c)+")
        with pytest.raises(AdmissionError):
            scheduler.submit_update(add=[("x", "b", "y")])
        scheduler.stop()

    def test_queued_jobs_fail_on_stop(self, fig1):
        scheduler = SharingScheduler(
            GraphDB.open(fig1), workers=1, max_queue=4, start=False
        )
        future = scheduler.submit("a.(b.c)+")
        scheduler.stop()
        with pytest.raises(ServerError, match="shutting down"):
            future.result(timeout=5)
        # The outcome ledger balances: nothing reads as still in flight.
        assert scheduler.metrics.snapshot()["in_flight"] == 0

    def test_cancelled_jobs_leave_ledger_balanced(self, fig1):
        scheduler = SharingScheduler(
            GraphDB.open(fig1), workers=1, max_queue=4, start=False
        )
        future = scheduler.submit("a.(b.c)+")
        assert future.cancel()
        scheduler.stop()
        snapshot = scheduler.metrics.snapshot()
        assert snapshot["cancelled"] == 1
        assert snapshot["in_flight"] == 0

    def test_submit_after_stop_raises(self, fig1):
        scheduler = SharingScheduler(GraphDB.open(fig1), workers=1)
        scheduler.stop()
        with pytest.raises(ServerError, match="shutting down"):
            scheduler.submit("a")


class TestDeadlines:
    def test_expired_job_is_dropped(self, fig1):
        scheduler = SharingScheduler(
            GraphDB.open(fig1), workers=1, start=False
        )
        future = scheduler.submit("a.(b.c)+", timeout=0.0)
        time.sleep(0.01)  # guarantee the deadline is in the past
        scheduler.start()
        with pytest.raises(DeadlineExpiredError):
            future.result(timeout=5)
        assert scheduler.metrics.expired == 1
        scheduler.stop()

    def test_generous_deadline_completes(self, fig1):
        scheduler = SharingScheduler(GraphDB.open(fig1), workers=1)
        future = scheduler.submit("d.(b.c)+.c", timeout=30.0)
        pairs, elapsed = future.result(timeout=5)
        assert pairs == {(7, 3), (7, 5)}
        assert elapsed >= 0.0
        scheduler.stop()


class TestExecution:
    def test_results_match_direct_evaluation(self, fig1):
        db = GraphDB.open(fig1)
        scheduler = SharingScheduler(db, workers=2)
        queries = ["d.(b.c)+.c", "a.(b.c)+", "(b.c)+.c", "b.c"]
        futures = [scheduler.submit(query) for query in queries]
        served = [future.result(timeout=10)[0] for future in futures]
        scheduler.stop()
        expected = [
            set(result) for result in GraphDB.open(fig1).execute_many(queries)
        ]
        assert served == expected

    def test_sharing_across_submissions_hits_cache(self, fig1):
        db = GraphDB.open(fig1)
        scheduler = SharingScheduler(db, workers=2)
        futures = [
            scheduler.submit(query)
            for query in ["a.(b.c)+", "d.(b.c)+.c", "(b.c)+.c"]
        ]
        for future in futures:
            future.result(timeout=10)
        stats = scheduler.stats()
        scheduler.stop()
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hits"] >= 2

    def test_evaluation_error_goes_to_future(self, fig1):
        db = GraphDB.open(fig1, engine="rtc", max_clauses=1)
        scheduler = SharingScheduler(
            db, workers=1, engine_kwargs={"max_clauses": 1}
        )
        future = scheduler.submit("a|b")
        with pytest.raises(Exception, match="clauses"):
            future.result(timeout=10)
        assert scheduler.metrics.failed == 1
        scheduler.stop()

    def test_batched_queries_counted(self, fig1):
        scheduler = SharingScheduler(GraphDB.open(fig1), workers=1)
        scheduler.submit("b.c").result(timeout=10)
        scheduler.stop()
        assert scheduler.metrics.batches >= 1
        assert scheduler.metrics.max_batch_size >= 1


class TestUpdates:
    def test_update_applies_and_invalidates(self, fig1):
        db = GraphDB.open(fig1)
        scheduler = SharingScheduler(db, workers=2)
        before = scheduler.submit("(b.c)+").result(timeout=10)[0]
        scheduler.submit_update(add=[(8, "b", 1)]).result(timeout=10)
        after = scheduler.submit("(b.c)+").result(timeout=10)[0]
        scheduler.stop()
        assert db.graph.has_edge(8, "b", 1)
        assert before != after
        assert after == set(GraphDB.open(db.graph).execute("(b.c)+"))

    def test_failed_update_surfaces(self, fig1):
        db = GraphDB.open(fig1)
        scheduler = SharingScheduler(db, workers=1)
        future = scheduler.submit_update(remove=[("missing", "b", "gone")])
        with pytest.raises(Exception):
            future.result(timeout=10)
        scheduler.stop()

    def test_update_repairs_watchers(self, fig1):
        db = GraphDB.open(fig1)
        watcher = db.watch("b.c")
        scheduler = SharingScheduler(db, workers=1)
        assert not watcher.reaches(5, 2)
        scheduler.submit_update(add=[(5, "b", 0), (0, "c", 2)]).result(
            timeout=10
        )
        scheduler.stop()
        assert watcher.reaches(5, 2)
