"""Client transport-failure semantics: poison, fail fast, never desync.

A client whose stream broke mid-call (connection lost, half-read
response, id mismatch) must not be reused: its next read would consume
the previous call's leftover bytes and return the wrong response.  These
tests drive the client against deliberately misbehaving servers and
assert every later call fails fast with a clear
:class:`~repro.errors.ServerError` -- while server-*reported* errors
(well-framed ``ok: false`` responses) leave the client usable.
"""

import json
import socket
import threading

import pytest

from repro.db import GraphDB
from repro.errors import ProtocolError, RPQSyntaxError, ServerError
from repro.server import Client, ServerThread


class FakeServer:
    """One-connection TCP server running ``handler(conn)`` on a thread."""

    def __init__(self, handler):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.address = self._listener.getsockname()
        self._thread = threading.Thread(
            target=self._run, args=(handler,), daemon=True
        )
        self._thread.start()

    def _run(self, handler):
        connection, _peer = self._listener.accept()
        try:
            handler(connection)
        finally:
            connection.close()

    def close(self):
        self._listener.close()
        self._thread.join(timeout=10)


def read_line(connection) -> bytes:
    data = b""
    while not data.endswith(b"\n"):
        chunk = connection.recv(4096)
        if not chunk:
            break
        data += chunk
    return data


def assert_poisoned(client: Client) -> None:
    """Every verb fails fast on a poisoned client, no I/O attempted."""
    with pytest.raises(ServerError, match="poisoned"):
        client.ping()
    with pytest.raises(ServerError, match="poisoned"):
        client.query("a.b")
    assert "poisoned" in repr(client)


class TestTransportPoisoning:
    def test_server_closing_mid_call_poisons(self):
        server = FakeServer(lambda connection: read_line(connection))
        try:
            client = Client(*server.address)
            with pytest.raises(ServerError, match="closed the connection"):
                client.ping()
            assert_poisoned(client)
        finally:
            server.close()

    def test_id_mismatch_poisons(self):
        def wrong_id(connection):
            read_line(connection)
            connection.sendall(
                json.dumps({"ok": True, "id": 999999, "pong": True}).encode()
                + b"\n"
            )
            read_line(connection)  # hold the socket open past the first call

        server = FakeServer(wrong_id)
        try:
            client = Client(*server.address)
            with pytest.raises(ProtocolError, match="does not match"):
                client.ping()
            # The transport may still be connected -- the client must
            # refuse anyway: the stream position is unknowable.
            assert_poisoned(client)
        finally:
            server.close()

    def test_unparseable_response_poisons(self):
        def garbage(connection):
            read_line(connection)
            connection.sendall(b"this is not json\n")
            read_line(connection)

        server = FakeServer(garbage)
        try:
            client = Client(*server.address)
            with pytest.raises(ProtocolError):
                client.ping()
            assert_poisoned(client)
        finally:
            server.close()

    def test_read_timeout_poisons(self):
        stall = threading.Event()

        def silent(connection):
            read_line(connection)
            stall.wait(timeout=10)  # never answer within the socket timeout

        server = FakeServer(silent)
        try:
            client = Client(*server.address, socket_timeout=0.2)
            with pytest.raises(ServerError, match="connection lost"):
                client.ping()
            assert_poisoned(client)
        finally:
            stall.set()
            server.close()


class TestServerReportedErrorsDoNotPoison:
    def test_syntax_error_then_normal_call(self, fig1):
        """Well-framed failures keep the stream usable (no poisoning)."""
        with ServerThread(GraphDB.open(fig1)) as handle:
            with Client(*handle.address) as client:
                with pytest.raises(RPQSyntaxError):
                    client.query("((")
                assert client.ping() >= 1
                assert client.query("b.c").count == len(
                    GraphDB.open(fig1).execute("b.c")
                )

    def test_closed_client_reports_closed_not_poisoned(self, fig1):
        with ServerThread(GraphDB.open(fig1)) as handle:
            client = Client(*handle.address)
            client.close()
            with pytest.raises(ServerError, match="closed"):
                client.ping()
