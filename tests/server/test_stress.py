"""Concurrency stress tests: correctness and sharing under load.

Two gates:

* served results are *identical* to a sequential ``execute_many`` on a
  fresh session, no matter how many client threads interleave;
* a 32-client workload of closure-sharing queries on the ``rtc`` engine
  performs measurably fewer RTC constructions than it serves queries
  (cache hits > 0) -- the server-level restatement of the paper's claim.
"""

import threading

import pytest

from repro.db import GraphDB
from repro.server import Client, ServerConfig, ServerThread

#: Closure-sharing workload over the Fig. 1 alphabet: three distinct
#: bodies, each used by several query shapes.
QUERIES = [
    "a.(b.c)+",
    "d.(b.c)+.c",
    "(b.c)+.c",
    "(b.c)+",
    "a.(c.b)+",
    "(c.b)+.b",
    "d.(b)+",
    "(b)+.c",
    "b.c",
    "a|d.(b.c)+",
]


def run_clients(address, num_clients: int, queries_per_client):
    """Each thread opens its own client and evaluates its query list."""
    results: list[dict | None] = [None] * num_clients
    errors: list[BaseException] = []

    def worker(index: int) -> None:
        try:
            with Client(*address) as client:
                mine = {}
                for query in queries_per_client(index):
                    mine[query] = client.query(query).pairs
                results[index] = mine
        except BaseException as error:  # noqa: BLE001 -- re-raised below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    if errors:
        raise errors[0]
    assert all(result is not None for result in results), "a client hung"
    return results


class TestConcurrentCorrectness:
    @pytest.mark.parametrize("engine", ["rtc", "full", "no"])
    def test_threads_match_sequential_execute_many(self, fig1, engine):
        """N threads x M queries == sequential execute_many, per engine."""
        num_clients = 8
        db = GraphDB.open(fig1, engine=engine)
        config = ServerConfig(workers=4, batch_window=0.002)
        with ServerThread(db, config) as handle:
            served = run_clients(
                handle.address, num_clients, lambda index: QUERIES
            )
        expected = {
            query: set(result)
            for query, result in zip(
                QUERIES, GraphDB.open(fig1, engine=engine).execute_many(QUERIES)
            )
        }
        for client_results in served:
            assert client_results == expected

    def test_interleaved_disjoint_workloads(self, fig1):
        """Clients running different query subsets still get exact answers."""
        db = GraphDB.open(fig1)
        with ServerThread(db) as handle:
            served = run_clients(
                handle.address,
                6,
                lambda index: QUERIES[index % 3 :: 3],
            )
        session = GraphDB.open(fig1)
        expected = {
            query: set(session.execute(query)) for query in QUERIES
        }
        for client_results in served:
            for query, pairs in client_results.items():
                assert pairs == expected[query], query


class TestSharingUnderLoad:
    def test_32_clients_amortise_rtc_constructions(self, fig1):
        """Acceptance gate: constructions (misses) << queries, hits > 0."""
        num_clients = 32
        db = GraphDB.open(fig1, engine="rtc")
        config = ServerConfig(workers=4, batch_window=0.005, max_queue=2048)
        with ServerThread(db, config) as handle:
            run_clients(handle.address, num_clients, lambda index: QUERIES)
            with Client(*handle.address) as client:
                stats = client.stats()
        scheduler = stats["scheduler"]
        total_queries = num_clients * len(QUERIES)
        assert scheduler["completed"] == total_queries
        cache = scheduler["cache"]
        assert cache["hits"] > 0
        # Far fewer RTC constructions than closure queries served: the
        # workload has 4 distinct closure bodies; allow slack for the
        # benign concurrent-miss race on first contact.
        assert cache["misses"] < total_queries / 10
        assert cache["hits"] + cache["misses"] >= total_queries / 2

    def test_batches_actually_group(self, fig1):
        """Under simultaneous load some micro-batches exceed size 1."""
        db = GraphDB.open(fig1, engine="rtc")
        # One worker and a generous window forces queueing, so the
        # dispatcher has something to group.
        config = ServerConfig(workers=1, batch_window=0.05, max_queue=2048)
        with ServerThread(db, config) as handle:
            run_clients(
                handle.address, 16, lambda index: ["a.(b.c)+", "d.(b.c)+.c"]
            )
            with Client(*handle.address) as client:
                scheduler = client.stats()["scheduler"]
        assert scheduler["completed"] == 32
        assert scheduler["max_batch_size"] > 1

    def test_concurrent_updates_and_queries_stay_consistent(self, fig1):
        """Writers and readers interleave; the final state is exact."""
        db = GraphDB.open(fig1)
        new_edges = [(100 + i, "b", 200 + i) for i in range(10)]
        with ServerThread(db) as handle:
            reader_stop = threading.Event()
            reader_errors: list[BaseException] = []

            def reader() -> None:
                try:
                    with Client(*handle.address) as client:
                        while not reader_stop.is_set():
                            client.query("(b.c)+", pairs=False)
                except BaseException as error:  # noqa: BLE001
                    reader_errors.append(error)

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            with Client(*handle.address) as writer:
                for edge in new_edges:
                    writer.update(add=[edge])
            reader_stop.set()
            for thread in threads:
                thread.join(timeout=60)
            with Client(*handle.address) as client:
                final = client.query("(b.c)+").pairs
        assert not reader_errors
        for source, _label, target in new_edges:
            assert db.graph.has_edge(source, "b", target)
        assert final == set(GraphDB.open(db.graph).execute("(b.c)+"))
