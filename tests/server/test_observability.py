"""End-to-end observability on the single-node server: tracing on the
wire, the ``metrics`` verb, and the slow-query forensics log."""

import json
import socket

import pytest

from repro.db import GraphDB
from repro.obs import SlowQueryLog, build_tree, parse_prometheus, render_trace
from repro.server import Client, ServerConfig, ServerThread


@pytest.fixture
def served(fig1):
    db = GraphDB.open(fig1)
    with ServerThread(db) as handle:
        with Client(*handle.address) as client:
            yield handle, client


def _raw_roundtrip(address, payload: dict) -> bytes:
    """One request over a bare socket; returns the raw response line."""
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(json.dumps(payload).encode() + b"\n")
        data = b""
        while not data.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    return data


class TestTracing:
    def test_traced_query_returns_span_tree(self, served):
        _, client = served
        result, trace = client.query_traced("d.(b.c)+.c")
        assert result.count == 2
        assert trace is not None and trace["spans"]
        names = {span["name"] for span in trace["spans"]}
        assert {"request", "query", "evaluate"} <= names
        # Every parent reference points inside the same trace: one tree.
        ids = {span["id"] for span in trace["spans"]}
        orphans = [
            span
            for span in trace["spans"]
            if span.get("parent") and span["parent"] not in ids
        ]
        assert orphans == []
        roots = build_tree(trace)
        assert len(roots) == 1
        assert roots[0]["name"] == "request"
        # And the tree renders without blowing up.
        assert render_trace(trace).startswith("trace ")

    def test_scheduler_phases_traced(self, served):
        _, client = served
        _, trace = client.query_traced("a.(b.c)+")
        names = {span["name"] for span in trace["spans"]}
        assert "admission_wait" in names
        assert "batch_wait" in names

    def test_untraced_responses_identical_and_trace_free(self, served):
        handle, _ = served
        payload = {"id": 1, "op": "query", "queries": ["b.c"], "pairs": True}
        first = json.loads(_raw_roundtrip(handle.address, payload))
        second = json.loads(_raw_roundtrip(handle.address, payload))
        assert "trace" not in first and "trace" not in second
        # Modulo the measured per-query wall time, the two responses
        # serialise identically: tracing leaves no residue when off.
        for response in (first, second):
            for entry in response["results"]:
                entry["time"] = 0.0
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_malformed_trace_field_rejected(self, served):
        handle, _ = served
        response = json.loads(
            _raw_roundtrip(
                handle.address,
                {"id": 1, "op": "query", "queries": ["b.c"], "trace": "yes"},
            )
        )
        assert response["ok"] is False

    def test_traced_update_returns_span_tree(self, served):
        _, client = served
        response = client.update(add=[(7, "b", 99)], trace=True)
        names = {span["name"] for span in response["trace"]["spans"]}
        assert "request" in names
        assert "update_drain" in names or "update_apply" in names


class TestMetricsVerb:
    def test_prometheus_text_parses_and_counters_are_monotonic(self, served):
        _, client = served
        client.query("b.c")
        parsed_before = parse_prometheus(client.metrics())
        admitted_key = frozenset({("outcome", "admitted")})
        before = parsed_before["repro_requests_total"][admitted_key]
        assert before >= 1
        client.query("b.c")
        client.query("a.(b.c)+")
        parsed_after = parse_prometheus(client.metrics())
        after = parsed_after["repro_requests_total"][admitted_key]
        assert after >= before + 2
        # The latency histogram rides along, well-formed, and advanced
        # by this test's own completions (the registry is process-wide,
        # so only deltas are meaningful under the full suite).
        assert "repro_request_latency_seconds_bucket" in parsed_after
        hist_before = parsed_before["repro_request_latency_seconds_count"][
            frozenset()
        ]
        hist_after = parsed_after["repro_request_latency_seconds_count"][
            frozenset()
        ]
        assert hist_after >= hist_before + 2


class TestSlowQueryForensics:
    def test_slow_log_records_trace_without_touching_response(
        self, fig1, tmp_path
    ):
        log_path = tmp_path / "slow.jsonl"
        db = GraphDB.open(fig1)
        config = ServerConfig(
            slow_query_log=str(log_path), slow_query_threshold=0.0
        )
        with ServerThread(db, config) as handle:
            with Client(*handle.address) as client:
                payload = {"id": 1, "op": "query", "queries": ["d.(b.c)+.c"]}
                response = json.loads(_raw_roundtrip(handle.address, payload))
                # Forensics tracing is server-side only: the silent
                # client's response carries no trace.
                assert "trace" not in response
                client.query("b.c")  # drive a second entry through Client
        entries = SlowQueryLog.read(str(log_path))
        assert len(entries) >= 2
        entry = entries[0]
        assert entry["queries"] == ["d.(b.c)+.c"]
        assert entry["elapsed"] >= 0.0
        names = {span["name"] for span in entry["trace"]["spans"]}
        assert "request" in names and "evaluate" in names
        assert entry["plans"]  # explain() plans recorded alongside

    def test_fast_queries_skip_the_log(self, fig1, tmp_path):
        log_path = tmp_path / "slow.jsonl"
        db = GraphDB.open(fig1)
        config = ServerConfig(
            slow_query_log=str(log_path), slow_query_threshold=30.0
        )
        with ServerThread(db, config) as handle:
            with Client(*handle.address) as client:
                client.query("b.c")
        assert not log_path.exists()
