"""Metrics unit tests: nearest-rank percentiles and counter accounting.

The percentile tests pin the regression where ``int(fraction * n)`` was
used instead of the nearest-rank index ``ceil(fraction * n) - 1``,
silently reporting every p50/p95/p99 one rank high whenever
``fraction * n`` landed on an integer.

The accounting test drives a real scheduler through a stress mix of
successful queries, evaluation failures, deadline expiries, cancelled
jobs, admission rejections and updates, then asserts the conservation
law the ``stats`` verb reports:
``admitted == completed + expired + failed + cancelled + updates`` and
``in_flight == 0`` once everything drained.
"""

import threading
import time
from concurrent.futures import wait

import pytest

from repro.db import GraphDB
from repro.errors import AdmissionError
from repro.server.metrics import ServerMetrics, percentile
from repro.server.scheduler import SharingScheduler


class TestPercentile:
    def test_nearest_rank_on_exact_boundaries(self):
        values = [1, 2, 3, 4]
        # ceil(0.5 * 4) = rank 2 -> value 2; the old int() indexing gave 3.
        assert percentile(values, 0.50) == 2
        assert percentile(values, 0.25) == 1
        assert percentile(values, 0.75) == 3
        assert percentile(values, 1.00) == 4

    def test_known_quantiles_of_1_to_100(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99
        assert percentile(values, 0.01) == 1

    def test_between_ranks_rounds_up(self):
        # ceil(0.5 * 5) = rank 3 -> the middle element.
        assert percentile([10, 20, 30, 40, 50], 0.5) == 30
        # ceil(0.95 * 3) = rank 3 -> the maximum.
        assert percentile([1, 2, 3], 0.95) == 3

    def test_order_independent_and_clamped(self):
        assert percentile([4, 1, 3, 2], 0.5) == 2
        assert percentile([7], 0.5) == 7
        assert percentile([7], 0.0) == 7  # rank clamps to the minimum

    def test_empty_sample_has_no_quantiles(self):
        """``percentile([])`` is None (wire ``null``), never a fake zero."""
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert percentile([], fraction) is None

    def test_idle_server_snapshot_is_null_safe(self):
        """A freshly started server reports null latencies, not zeros.

        Every field of the snapshot must be JSON-serialisable and the
        latency block must distinguish "no data" (None) from "zero
        latency" (0.0) -- the empty-reservoir regression.
        """
        import json

        metrics = ServerMetrics()
        snapshot = metrics.snapshot()
        latency = snapshot["latency"]
        assert latency["window"] == 0
        assert latency["mean"] is None
        assert latency["p50"] is None
        assert latency["p95"] is None
        assert latency["p99"] is None
        json.dumps(snapshot)  # must not raise
        # One completion flips every field to a real number.
        metrics.record_completed(0.25)
        latency = metrics.snapshot()["latency"]
        assert latency["window"] == 1
        assert latency["mean"] == 0.25
        assert latency["p50"] == 0.25

    def test_latency_values_snapshot(self):
        metrics = ServerMetrics(window=4)
        for latency in (0.4, 0.1, 0.3, 0.2):
            metrics.record_completed(latency)
        values = metrics.latency_values()
        assert sorted(values) == [0.1, 0.2, 0.3, 0.4]
        values.append(9.9)  # a copy: mutating it cannot touch the reservoir
        assert len(metrics.latency_values()) == 4


class TestAccountingIdentity:
    def test_stress_mix_fully_drains(self, fig1):
        """After queries+updates+expiries+rejections drain, the books close."""
        db = GraphDB.open(fig1, engine="rtc")
        scheduler = SharingScheduler(db, workers=2, max_queue=8, batch_window=0.002)
        futures = []
        futures_lock = threading.Lock()
        rejected = []

        def flood(index: int) -> None:
            for round_ in range(25):
                kind = (index + round_) % 5
                try:
                    if kind == 0:
                        future = scheduler.submit_update(
                            add=[((1000 * index) + round_, "b", "sink")]
                        )
                    elif kind == 1:  # duplicate edge -> update failure
                        future = scheduler.submit_update(
                            add=[("dup", "b", "dup"), ("dup", "b", "dup")]
                        )
                    elif kind == 2:  # expires before any worker claims it
                        future = scheduler.submit("a.(b.c)+", timeout=1e-6)
                    elif kind == 3:  # a cancellation attempt racing dispatch
                        future = scheduler.submit("(b.c)+")
                        future.cancel()
                    else:
                        future = scheduler.submit("d.(b.c)+.c")
                except AdmissionError:
                    rejected.append(1)
                    continue
                with futures_lock:
                    futures.append(future)

        threads = [
            threading.Thread(target=flood, args=(index,)) for index in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        done, pending = wait(futures, timeout=60)
        assert not pending, "a job never finished"

        # The flood's admission control is aggressive enough that some
        # outcome kinds may have been rejected wholesale; a calm tail
        # (empty queue, everything admitted) guarantees each counter is
        # exercised at least once.
        tail = [
            # A duplicate edge in one batch always fails the update job.
            scheduler.submit_update(
                add=[("tail", "b", "tail2"), ("tail", "b", "tail2")]
            ),
            scheduler.submit("a.(b.c)+", timeout=1e-6),  # expired
            scheduler.submit_update(add=[("tail3", "b", "sink")]),  # update
            scheduler.submit("d.(b.c)+.c"),  # completed
        ]
        futures.extend(tail)
        done, pending = wait(tail, timeout=60)
        assert not pending, "a tail job never finished"
        # Metrics are recorded just before futures resolve; give the last
        # worker the moment it needs to finish its bookkeeping.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            stats = scheduler.stats()
            if stats["in_flight"] == 0:
                break
            time.sleep(0.01)
        scheduler.stop()

        stats = scheduler.stats()
        assert stats["in_flight"] == 0
        assert stats["admitted"] == (
            stats["completed"]
            + stats["expired"]
            + stats["failed"]
            + stats["cancelled"]
            + stats["updates"]
        )
        assert stats["rejected"] == len(rejected)
        assert stats["admitted"] + stats["rejected"] == 6 * 25 + len(tail)
        # The mix really exercised every outcome except (maybe) cancel,
        # which is a race by construction.
        assert stats["completed"] > 0
        assert stats["failed"] > 0
        assert stats["expired"] > 0
        assert stats["updates"] > 0
        assert stats["rejected"] > 0

    def test_identity_survives_shutdown_failures(self, fig1):
        """Jobs failed by stop() still balance the books."""
        db = GraphDB.open(fig1)
        scheduler = SharingScheduler(db, workers=1, max_queue=64, start=False)
        futures = [scheduler.submit("a.(b.c)+") for _ in range(5)]
        scheduler.stop()  # never started: everything queued is failed/cancelled
        for future in futures:
            assert future.done()
            with pytest.raises(Exception):
                future.result()
        stats = scheduler.stats()
        assert stats["in_flight"] == 0
        assert stats["admitted"] == (
            stats["completed"]
            + stats["expired"]
            + stats["failed"]
            + stats["cancelled"]
            + stats["updates"]
        )
