"""End-to-end tests: QueryServer + Client over a real TCP socket."""

import json
import socket

import pytest

from repro.cli import main
from repro.db import GraphDB
from repro.errors import ProtocolError, RPQSyntaxError, ServerError
from repro.server import Client, ServerConfig, ServerThread


@pytest.fixture
def served(fig1):
    """A live server over the Fig. 1 graph plus one connected client."""
    db = GraphDB.open(fig1)
    with ServerThread(db) as handle:
        with Client(*handle.address) as client:
            yield db, handle, client


class TestQueryVerb:
    def test_single_query_pairs(self, served):
        _, _, client = served
        result = client.query("d.(b.c)+.c")
        assert result.count == 2
        assert result.pairs == {(7, 3), (7, 5)}
        assert result.time >= 0.0

    def test_query_matches_local_session(self, served, fig1):
        _, _, client = served
        queries = ["a.(b.c)+", "(b.c)+.c", "b.c|a", "(a|d).(b.c)*"]
        remote = [r.pairs for r in client.query_many(queries)]
        local = [set(r) for r in GraphDB.open(fig1).execute_many(queries)]
        assert remote == local

    def test_counts_only(self, served):
        _, _, client = served
        result = client.query("b.c", pairs=False)
        assert result.count == 5
        assert result.pairs is None
        with pytest.raises(ServerError, match="pairs=False"):
            iter(result)

    def test_iteration_and_len(self, served):
        _, _, client = served
        result = client.query("d.(b.c)+.c")
        assert len(result) == 2
        assert list(result) == [(7, 3), (7, 5)]

    def test_syntax_error_raised_remotely(self, served):
        _, _, client = served
        with pytest.raises(RPQSyntaxError):
            client.query("a..b")

    def test_connection_survives_errors(self, served):
        _, _, client = served
        with pytest.raises(RPQSyntaxError):
            client.query("a..b")
        assert client.query("b.c").count == 5

    def test_empty_query_list_rejected(self, served):
        _, _, client = served
        with pytest.raises(ProtocolError):
            client.query_many([])


class TestOtherVerbs:
    def test_ping(self, served):
        _, _, client = served
        assert client.ping() == 1

    def test_stats_document(self, served):
        _, _, client = served
        client.query_many(["a.(b.c)+", "d.(b.c)+.c"])
        stats = client.stats()
        assert stats["server"]["connections"] >= 1
        assert stats["session"]["engine"] == "rtc"
        scheduler = stats["scheduler"]
        assert scheduler["completed"] >= 2
        assert scheduler["qps"] > 0
        assert {"p50", "p95", "p99", "mean"} <= set(scheduler["latency"])
        assert scheduler["cache"]["hits"] + scheduler["cache"]["misses"] >= 2

    def test_update_visible_to_other_clients(self, served):
        db, handle, writer = served
        with Client(*handle.address) as reader:
            before = reader.query("(b.c)+").pairs
            response = writer.update(add=[(8, "b", 1)])
            assert response["added"] == 1
            after = reader.query("(b.c)+").pairs
        assert before != after
        assert after == set(GraphDB.open(db.graph).execute("(b.c)+"))

    def test_update_needs_edges(self, served):
        _, _, client = served
        with pytest.raises(ProtocolError, match="update"):
            client.update()

    def test_watch_and_reaches(self, served):
        _, _, client = served
        assert client.watch("b.c") == "b.c"
        assert client.reaches("b.c", 2, 6) is True
        assert client.reaches("b.c", 5, 2) is False
        client.update(add=[(5, "b", 0), (0, "c", 2)])
        assert client.reaches("b.c", 5, 2) is True


class TestRawProtocol:
    def send_raw(self, address, line: bytes) -> dict:
        with socket.create_connection(address, timeout=10) as sock:
            sock.sendall(line)
            data = b""
            while not data.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        return json.loads(data)

    def test_unknown_op(self, served):
        _, handle, _ = served
        response = self.send_raw(handle.address, b'{"op": "warp", "id": 9}\n')
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        assert response["id"] == 9

    def test_invalid_json(self, served):
        _, handle, _ = served
        response = self.send_raw(handle.address, b"{nope\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"

    def test_query_shorthand(self, served):
        _, handle, _ = served
        response = self.send_raw(
            handle.address, b'{"op": "query", "query": "b.c", "pairs": false}\n'
        )
        assert response["ok"] is True
        assert response["results"][0]["count"] == 5

    def test_bad_timeout_type(self, served):
        _, handle, _ = served
        response = self.send_raw(
            handle.address,
            b'{"op": "query", "queries": ["b.c"], "timeout": "soon"}\n',
        )
        assert response["error"]["code"] == "bad_request"


class TestClientLifecycle:
    def test_connect_parses_address(self, served):
        _, handle, _ = served
        host, port = handle.address
        with Client.connect(f"{host}:{port}") as client:
            assert client.ping() == 1

    def test_connect_rejects_bad_address(self):
        with pytest.raises(ServerError, match="host:port"):
            Client.connect("nonsense")

    def test_connection_refused(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ServerError, match="cannot connect"):
            Client("127.0.0.1", free_port, connect_timeout=1.0)

    def test_closed_client_raises(self, served):
        _, handle, _ = served
        client = Client(*handle.address)
        client.close()
        with pytest.raises(ServerError, match="closed"):
            client.ping()


class TestCliIntegration:
    def test_query_connect_table(self, served, capsys):
        _, handle, _ = served
        host, port = handle.address
        code = main(["query", "--connect", f"{host}:{port}", "d.(b.c)+.c"])
        assert code == 0
        out = capsys.readouterr().out
        assert "d.(b.c)+.c" in out and "| 2" in out

    def test_query_connect_json(self, served, capsys):
        _, handle, _ = served
        host, port = handle.address
        code = main(
            ["query", "--connect", f"{host}:{port}", "d.(b.c)+.c", "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["results"][0]["count"] == 2
        assert [7, 3] in document["results"][0]["pairs"]

    def test_query_connect_refused(self, capsys):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        code = main(["query", "--connect", f"127.0.0.1:{free_port}", "b.c"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_query_without_graph_or_connect(self, capsys):
        assert main(["query"]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "g.txt"])
        assert args.port == 7687
        assert args.workers == 4
        assert args.queue_size == 256


class TestServerThreadLifecycle:
    def test_start_is_idempotent(self, fig1):
        handle = ServerThread(GraphDB.open(fig1))
        try:
            assert handle.start() is handle.start()
        finally:
            handle.stop()

    def test_stop_twice_is_safe(self, fig1):
        handle = ServerThread(GraphDB.open(fig1)).start()
        handle.stop()
        handle.stop()

    def test_custom_config(self, fig1):
        config = ServerConfig(workers=1, max_queue=8, batch_window=0.001)
        with ServerThread(GraphDB.open(fig1), config) as handle:
            with Client(*handle.address) as client:
                assert client.stats()["scheduler"]["workers"] == 1
