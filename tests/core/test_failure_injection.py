"""Failure injection and hostile-input tests across the core surface.

Exercises the library's behaviour on degenerate graphs, malformed and
adversarial queries, and boundary conditions that real users hit first:
empty graphs, isolated vertices, queries over missing labels, deeply
nested closures, epsilon-heavy expressions and DNF blow-ups.
"""

import pytest

from repro.core.engines import FullSharingEngine, NoSharingEngine, RTCSharingEngine
from repro.errors import EvaluationError, RPQSyntaxError
from repro.graph.multigraph import LabeledMultigraph

ENGINES = [NoSharingEngine, FullSharingEngine, RTCSharingEngine]


def empty_graph() -> LabeledMultigraph:
    return LabeledMultigraph()


def isolated_graph() -> LabeledMultigraph:
    graph = LabeledMultigraph()
    for vertex in range(5):
        graph.add_vertex(vertex)
    return graph


@pytest.mark.parametrize("engine_class", ENGINES)
class TestDegenerateGraphs:
    def test_empty_graph_label_query(self, engine_class):
        assert engine_class(empty_graph()).evaluate("a") == set()

    def test_empty_graph_closure_query(self, engine_class):
        assert engine_class(empty_graph()).evaluate("a.(b)+.c") == set()

    def test_empty_graph_epsilon(self, engine_class):
        assert engine_class(empty_graph()).evaluate("()") == set()

    def test_empty_graph_star(self, engine_class):
        # R* on an empty graph: no vertices, so no reflexive pairs either.
        assert engine_class(empty_graph()).evaluate("(a)*") == set()

    def test_isolated_vertices_epsilon(self, engine_class):
        result = engine_class(isolated_graph()).evaluate("()")
        assert result == {(v, v) for v in range(5)}

    def test_isolated_vertices_star(self, engine_class):
        result = engine_class(isolated_graph()).evaluate("(a)*")
        assert result == {(v, v) for v in range(5)}

    def test_isolated_vertices_plus(self, engine_class):
        assert engine_class(isolated_graph()).evaluate("(a)+") == set()

    def test_self_loop_only_graph(self, engine_class):
        graph = LabeledMultigraph.from_edges([(0, "a", 0)])
        assert engine_class(graph).evaluate("a+") == {(0, 0)}
        assert engine_class(graph).evaluate("a.a.a") == {(0, 0)}


@pytest.mark.parametrize("engine_class", ENGINES)
class TestHostileQueries:
    def test_unknown_labels_everywhere(self, engine_class, fig1):
        assert engine_class(fig1).evaluate("x.(y)+.z") == set()

    def test_unknown_label_in_pre_only(self, engine_class, fig1):
        assert engine_class(fig1).evaluate("x.(b.c)+") == set()

    def test_unknown_label_in_post_only(self, engine_class, fig1):
        assert engine_class(fig1).evaluate("d.(b.c)+.x") == set()

    def test_epsilon_closure_body(self, engine_class, fig1):
        # (())+ is epsilon; a . (())+ . c == a.c.
        assert engine_class(fig1).evaluate("a.(())+.c") == engine_class(
            fig1
        ).evaluate("a.c")

    def test_deeply_nested_closures(self, engine_class, fig1):
        assert engine_class(fig1).evaluate("(((b.c)+)+)+") == engine_class(
            fig1
        ).evaluate("(b.c)+")

    def test_star_of_star(self, engine_class, fig1):
        assert engine_class(fig1).evaluate("((b.c)*)*") == engine_class(
            fig1
        ).evaluate("(b.c)*")

    def test_optional_stack(self, engine_class, fig1):
        assert engine_class(fig1).evaluate("b???") == engine_class(fig1).evaluate(
            "b?"
        )

    def test_malformed_query_raises(self, engine_class, fig1):
        with pytest.raises(RPQSyntaxError):
            engine_class(fig1).evaluate("(a|b")


class TestDnfBlowupGuard:
    def test_engine_honours_max_clauses(self, fig1):
        wide = ".".join(["(a|b)"] * 13)  # 8192 clauses > default 4096
        engine = RTCSharingEngine(fig1)
        with pytest.raises(EvaluationError, match="exceeds"):
            engine.evaluate(wide)

    def test_raising_the_limit_unblocks(self, fig1):
        wide = ".".join(["(a|b)"] * 13)
        engine = RTCSharingEngine(fig1, max_clauses=10_000)
        no_sharing = NoSharingEngine(fig1)
        assert engine.evaluate(wide) == no_sharing.evaluate(wide)


class TestVertexTypeRobustness:
    def test_string_vertices(self):
        graph = LabeledMultigraph.from_edges(
            [("a-node", "knows", "b-node"), ("b-node", "knows", "a-node")]
        )
        for engine_class in ENGINES:
            result = engine_class(graph).evaluate("knows+")
            assert ("a-node", "a-node") in result

    def test_mixed_vertex_types(self):
        graph = LabeledMultigraph.from_edges([(1, "a", "x"), ("x", "a", 2)])
        for engine_class in ENGINES:
            assert engine_class(graph).evaluate("a.a") == {(1, 2)}

    def test_tuple_vertices(self):
        graph = LabeledMultigraph.from_edges(
            [((0, 0), "go", (0, 1)), ((0, 1), "go", (1, 1))]
        )
        result = RTCSharingEngine(graph).evaluate("go+")
        assert ((0, 0), (1, 1)) in result
