"""Tests for the opt-in query simplification in the engines."""

import pytest

from repro.core.engines import FullSharingEngine, NoSharingEngine, RTCSharingEngine

ENGINES = [NoSharingEngine, FullSharingEngine, RTCSharingEngine]


@pytest.mark.parametrize("engine_class", ENGINES)
class TestSimplifyOption:
    def test_results_identical(self, fig1, engine_class):
        for query in ["(((b.c)+)+)+", "(b|b).c", "d.((b.c)+)?", "(c*)*.b"]:
            plain = engine_class(fig1).evaluate(query)
            simplified = engine_class(fig1, simplify_queries=True).evaluate(query)
            assert plain == simplified, query

    def test_off_by_default(self, fig1, engine_class):
        assert engine_class(fig1).simplify_queries is False


class TestSimplifyReducesWork:
    def test_fewer_cache_entries_for_nested_closures(self, fig1):
        # (((b.c)+)+)+ evaluates three nested RTCs without simplification;
        # with it, only the innermost body's RTC is computed.
        plain = RTCSharingEngine(fig1)
        plain.evaluate("(((b.c)+)+)+")
        rewriting = RTCSharingEngine(fig1, simplify_queries=True)
        rewriting.evaluate("(((b.c)+)+)+")
        assert rewriting.rtc_cache.stats.entries < plain.rtc_cache.stats.entries

    def test_simplified_cache_key_is_canonical_spelling(self, fig1):
        engine = RTCSharingEngine(fig1, simplify_queries=True)
        engine.evaluate("(((b.c)+)+)+")
        assert "b.c" in engine.rtc_cache._entries
