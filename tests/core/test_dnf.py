"""Tests for the DNF conversion with closure literals (Algorithm 1, line 2)."""

import itertools

import pytest

from repro.core.dnf import ClosureLiteral, clause_to_regex, dnf_to_regex, to_dnf
from repro.errors import EvaluationError
from repro.regex.ast import Label, Plus, Star, concat
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse


def clause_strings(query: str) -> set[str]:
    return {
        clause_to_regex(clause).to_string() for clause in to_dnf(parse(query))
    }


class TestConversion:
    def test_label(self):
        assert to_dnf(parse("a")) == [(Label("a"),)]

    def test_epsilon_clause(self):
        assert to_dnf(parse("()")) == [()]

    def test_union_splits(self):
        assert clause_strings("a|b.c") == {"a", "b.c"}

    def test_concat_distributes_over_union(self):
        assert clause_strings("(a|b).c") == {"a.c", "b.c"}

    def test_double_distribution(self):
        assert clause_strings("(a|b).(c|d)") == {"a.c", "a.d", "b.c", "b.d"}

    def test_optional_expands(self):
        assert clause_strings("a?.b") == {"b", "a.b"}

    def test_closure_stays_literal(self):
        clauses = to_dnf(parse("(a|b)+"))
        assert clauses == [(ClosureLiteral(parse("a|b"), "+"),)]

    def test_star_literal(self):
        clauses = to_dnf(parse("(a.b)*"))
        assert clauses == [(ClosureLiteral(parse("a.b"), "*"),)]

    def test_union_inside_closure_not_distributed(self):
        clauses = to_dnf(parse("c.(a|b)+.d"))
        assert len(clauses) == 1
        literals = clauses[0]
        assert literals[0] == Label("c")
        assert isinstance(literals[1], ClosureLiteral)
        assert literals[2] == Label("d")

    def test_dedup(self):
        assert len(to_dnf(parse("a|a"))) == 1
        assert len(to_dnf(parse("(a|a).(b|b)"))) == 1

    def test_paper_batch_unit_shapes(self):
        # Example 7's queries each form a single clause.
        assert len(to_dnf(parse("a.(a.b)+.b"))) == 1
        assert len(to_dnf(parse("(a.b)*.b+.(a.b+.c)+"))) == 1

    def test_max_clauses_guard(self):
        query = ".".join(["(a|b)"] * 8)
        with pytest.raises(EvaluationError, match="exceeds"):
            to_dnf(parse(query), max_clauses=100)


class TestClosureLiteral:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            ClosureLiteral(Label("a"), "?")

    def test_to_regex(self):
        assert ClosureLiteral(Label("a"), "+").to_regex() == Plus(Label("a"))
        assert ClosureLiteral(Label("a"), "*").to_regex() == Star(Label("a"))

    def test_str(self):
        assert str(ClosureLiteral(parse("a.b"), "+")) == "(a.b)+"


class TestLanguagePreservation:
    QUERIES = [
        "a",
        "a|b",
        "(a|b).c",
        "a?.b+",
        "(a.b|c)+",
        "a.(b|c).(a|b)*",
        "(a|())+.b",
        "a?.b?.c?",
        "d.(b.c)+.c|a",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_dnf_language_equals_original(self, query):
        node = parse(query)
        rebuilt = dnf_to_regex(to_dnf(node))
        original = compile_nfa(node)
        converted = compile_nfa(rebuilt)
        for length in range(0, 5):
            for word in itertools.product("abcd", repeat=length):
                assert original.accepts_word(list(word)) == converted.accepts_word(
                    list(word)
                ), (query, word)


class TestRebuild:
    def test_clause_to_regex_empty(self):
        assert clause_to_regex(()).to_string() == "()"

    def test_clause_to_regex_mixed(self):
        clause = (Label("a"), ClosureLiteral(parse("b.c"), "+"), Label("d"))
        assert clause_to_regex(clause) == concat(
            Label("a"), Plus(parse("b.c")), Label("d")
        )

    def test_dnf_to_regex_requires_clause(self):
        with pytest.raises(ValueError):
            dnf_to_regex([])
