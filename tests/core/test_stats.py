"""Tests for reduction statistics (the Fig. 12/13 quantities)."""

import pytest

from repro.core.stats import reduction_stats
from repro.graph.builders import labeled_cycle, labeled_path


class TestReductionStats:
    def test_fig1_bc(self, fig1):
        stats = reduction_stats(fig1, "b.c")
        assert stats.num_graph_vertices == 10
        assert stats.num_gr_vertices == 5
        assert stats.num_condensed_vertices == 3
        assert stats.rtc_pairs == 3
        assert stats.full_closure_pairs == 10
        assert stats.average_scc_size == pytest.approx(5 / 3)
        assert stats.shared_size_ratio == pytest.approx(10 / 3)
        assert stats.vertex_reduction_ratio == pytest.approx(5 / 3)

    def test_cycle_maximal_reduction(self):
        stats = reduction_stats(labeled_cycle(8), "a")
        assert stats.num_gr_vertices == 8
        assert stats.num_condensed_vertices == 1
        assert stats.rtc_pairs == 1
        assert stats.full_closure_pairs == 64
        assert stats.shared_size_ratio == 64.0

    def test_path_no_reduction(self):
        stats = reduction_stats(labeled_path(5), "a")
        assert stats.vertex_reduction_ratio == 1.0
        assert stats.average_scc_size == 1.0
        # Sparse DAG: RTC pair count equals full closure pair count.
        assert stats.rtc_pairs == stats.full_closure_pairs

    def test_empty_reduction(self, fig1):
        stats = reduction_stats(fig1, "zz")
        assert stats.num_gr_vertices == 0
        assert stats.rtc_pairs == 0
        assert stats.shared_size_ratio == 1.0
        assert stats.vertex_reduction_ratio == 1.0
