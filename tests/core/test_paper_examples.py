"""Every worked example of the paper, asserted end to end.

One test per example keeps the mapping paper -> code auditable:

* Example 1/2 -- ``(d·(b·c)+·c)_G`` on Fig. 1;
* Example 3   -- edge-level reduction ``G -> G_{b·c}`` (Fig. 5);
* Example 4   -- Lemma 1: ``(b·c)+_G = TC(G_{b·c})``;
* Example 5   -- vertex-level reduction ``G_{b·c} -> Ḡ_{b·c}`` (Fig. 6);
* Example 6   -- Theorem 1: expansion of ``TC(Ḡ_{b·c})``;
* Example 7   -- the three recursion trees of Fig. 7;
* Table III   -- size relations between ``R+_G`` and the RTC.
"""

from repro.core.decompose import decompose_clause
from repro.core.dnf import to_dnf
from repro.core.engines import RTCSharingEngine
from repro.core.reduction import edge_level_reduce, vertex_level_reduce
from repro.core.rtc import compute_rtc
from repro.graph.digraph import DiGraph
from repro.graph.transitive_closure import tc_bfs
from repro.regex.parser import parse
from repro.rpq.evaluate import eval_rpq

EXAMPLE4_TC = {
    (2, 2), (2, 4), (2, 6), (3, 3), (3, 5),
    (4, 2), (4, 4), (4, 6), (5, 3), (5, 5),
}


class TestExamples1And2:
    def test_query_result(self, fig1):
        assert eval_rpq(fig1, "d.(b.c)+.c") == {(7, 5), (7, 3)}

    def test_dead_branch_terminates(self, fig1):
        # p(v7,d,v4,b,v1,c,v2,b,v3): no c-transition from v3 -> not a result.
        assert (7, 3) in eval_rpq(fig1, "d.(b.c)+.c")
        assert (7, 2) not in eval_rpq(fig1, "d.(b.c)+.c")


class TestExample3:
    def test_gbc_edges(self, fig1):
        gbc = edge_level_reduce(fig1, "b.c")
        assert gbc.edge_set() == {(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)}


class TestExample4:
    def test_lemma1_equivalence(self, fig1):
        gbc = edge_level_reduce(fig1, "b.c")
        assert eval_rpq(fig1, "(b.c)+") == tc_bfs(gbc) == EXAMPLE4_TC


class TestExample5:
    def test_three_sccs(self, fig1):
        gbc = edge_level_reduce(fig1, "b.c")
        condensation = vertex_level_reduce(gbc)
        assert condensation.num_sccs == 3
        members = sorted(
            tuple(sorted(m)) for m in condensation.members.values()
        )
        assert members == [(2, 4), (3, 5), (6,)]

    def test_condensed_edges(self, fig1):
        gbc = edge_level_reduce(fig1, "b.c")
        condensation = vertex_level_reduce(gbc)
        s24 = condensation.scc_of[2]
        s35 = condensation.scc_of[3]
        s6 = condensation.scc_of[6]
        assert condensation.dag.edge_set() == {
            (s24, s24), (s24, s6), (s35, s35)
        }


class TestExample6:
    def test_theorem1_expansion(self, fig1):
        rtc = compute_rtc(eval_rpq(fig1, "b.c"))
        assert rtc.num_pairs == 3
        assert rtc.expand() == EXAMPLE4_TC


class TestExample7:
    def test_query_a_no_closure(self):
        clauses = to_dnf(parse("a"))
        unit = decompose_clause(clauses[0])
        assert unit.type is None
        assert unit.post.to_string() == "a"

    def test_query_a_ab_plus_b(self):
        unit = decompose_clause(to_dnf(parse("a.(a.b)+.b"))[0])
        assert (unit.pre.to_string(), unit.r.to_string(), unit.type) == (
            "a", "a.b", "+",
        )
        assert unit.post_labels == ("b",)

    def test_query_nested(self):
        unit = decompose_clause(to_dnf(parse("(a.b)*.b+.(a.b+.c)+"))[0])
        assert unit.pre.to_string() == "(a.b)*.b+"
        assert unit.r.to_string() == "a.b+.c"
        assert unit.type == "+"

    def test_rtc_shared_across_the_three_queries(self, fig1):
        engine = RTCSharingEngine(fig1)
        engine.evaluate("a")
        engine.evaluate("a.(a.b)+.b")
        hits_before = engine.rtc_cache.stats.hits
        engine.evaluate("(a.b)*.b+.(a.b+.c)+")
        # The third query reuses the RTC for a.b computed by the second.
        assert engine.rtc_cache.stats.hits > hits_before


class TestTableIII:
    def test_rtc_never_larger_than_full_closure(self, fig1):
        for r in ["b.c", "c", "b|c", "a.b"]:
            rg = eval_rpq(fig1, r)
            rtc = compute_rtc(rg)
            full = tc_bfs(DiGraph.from_pairs(rg))
            assert rtc.num_pairs <= len(full)
            assert rtc.num_sccs <= rtc.num_gr_vertices
