"""Tests for the three evaluation engines and their agreement."""

import pytest

from repro.core.engines import (
    FullSharingEngine,
    NoSharingEngine,
    RTCSharingEngine,
    make_engine,
)
from repro.errors import RPQSyntaxError, UnknownLabelError
from repro.graph.builders import labeled_cycle
from repro.rpq.evaluate import eval_rpq

ENGINE_CLASSES = [NoSharingEngine, FullSharingEngine, RTCSharingEngine]

QUERIES = [
    "a",
    "d",
    "()",
    "b.c",
    "d.(b.c)+.c",
    "a.(b.c)+",
    "(b.c)+.c",
    "(b.c)*",
    "d.(b.c)*.c",
    "a.(a.b)+.b",
    "(a.b)*.b+.(a.b+.c)+",
    "b.c|d.(b.c)+.c",
    "(b|c)+",
    "c*.b",
    "a?.(b.c)+",
    "(c.c)+|(b.b)+",
    "e.f.(e.f)*",
    "zz.(b.c)+",
]


class TestEngineAgreement:
    @pytest.mark.parametrize("query", QUERIES)
    def test_engines_agree_on_fig1(self, fig1, query):
        results = [cls(fig1).evaluate(query) for cls in ENGINE_CLASSES]
        assert results[0] == results[1] == results[2], query

    @pytest.mark.parametrize("query", ["a+", "(a.b)+", "a.b+.a", "(a|b)+.a"])
    def test_engines_agree_with_oracle(self, tiny_graph, oracle_eval, query):
        expected = oracle_eval(tiny_graph, query)
        for cls in ENGINE_CLASSES:
            assert cls(tiny_graph).evaluate(query) == expected, (cls, query)

    def test_evaluate_many_matches_individual(self, fig1):
        queries = ["d.(b.c)+.c", "a.(b.c)+", "b.(b.c)+.c"]
        engine = RTCSharingEngine(fig1)
        batch = engine.evaluate_many(queries)
        assert batch == [eval_rpq(fig1, q) for q in queries]


class TestRTCSharingSpecifics:
    def test_rtc_cache_hit_on_second_query(self, fig1):
        engine = RTCSharingEngine(fig1)
        engine.evaluate("d.(b.c)+.c")
        assert engine.rtc_cache.stats.entries == 1
        misses = engine.rtc_cache.stats.misses
        engine.evaluate("a.(b.c)+")
        assert engine.rtc_cache.stats.entries == 1
        assert engine.rtc_cache.stats.misses == misses  # pure hit
        assert engine.rtc_cache.stats.hits >= 1

    def test_nested_closures_reuse_rtc(self, fig1):
        # Example 7: evaluating a.(a.b)+.b then (a.b)*... reuses the RTC.
        engine = RTCSharingEngine(fig1)
        engine.evaluate("a.(a.b)+.b")
        entries_after_first = engine.rtc_cache.stats.entries
        engine.evaluate("(a.b)*.b+.(a.b+.c)+")
        assert engine.rtc_cache.stats.hits >= 1
        assert engine.rtc_cache.stats.entries > entries_after_first

    def test_semantic_cache_shares_equal_languages(self, fig1):
        engine = RTCSharingEngine(fig1, cache_mode="semantic")
        engine.evaluate("d.(b.c|b.b)+")
        engine.evaluate("d.(b.(c|b))+")
        assert engine.rtc_cache.stats.entries == 1
        assert engine.rtc_cache.stats.hits >= 1

    def test_syntactic_cache_distinguishes_spelling(self, fig1):
        engine = RTCSharingEngine(fig1)
        engine.evaluate("d.(b.c|b.b)+")
        engine.evaluate("d.(b.(c|b))+")
        assert engine.rtc_cache.stats.entries == 2

    def test_reaches_extension(self, fig1):
        engine = RTCSharingEngine(fig1)
        assert engine.reaches("b.c", 2, 6)
        assert not engine.reaches("b.c", 6, 2)

    def test_shared_data_size(self, fig1):
        engine = RTCSharingEngine(fig1)
        assert engine.shared_data_size() == 0
        engine.evaluate("d.(b.c)+.c")
        assert engine.shared_data_size() == 3  # Example 6: three RTC pairs

    def test_reset_cache(self, fig1):
        engine = RTCSharingEngine(fig1)
        engine.evaluate("d.(b.c)+.c")
        engine.reset_cache()
        assert engine.shared_data_size() == 0
        # Still evaluates correctly after the reset.
        assert engine.evaluate("d.(b.c)+.c") == {(7, 5), (7, 3)}


class TestFullSharingSpecifics:
    def test_closure_cache_shared(self, fig1):
        engine = FullSharingEngine(fig1)
        engine.evaluate("d.(b.c)+.c")
        assert engine.closure_cache.stats.entries == 1
        engine.evaluate("a.(b.c)+")
        assert engine.closure_cache.stats.entries == 1
        assert engine.closure_cache.stats.hits >= 1

    def test_shared_data_is_full_closure(self, fig1):
        engine = FullSharingEngine(fig1)
        engine.evaluate("d.(b.c)+.c")
        assert engine.shared_data_size() == 10  # Example 4: ten pairs

    def test_shared_sizes_rtc_never_larger(self, fig1):
        full = FullSharingEngine(fig1)
        rtc = RTCSharingEngine(fig1)
        for query in ["d.(b.c)+.c", "a.(b|c)+", "(c)+"]:
            full.evaluate(query)
            rtc.evaluate(query)
        assert rtc.shared_data_size() <= full.shared_data_size()


class TestMetricsAndErrors:
    def test_total_time_accumulates(self, fig1):
        engine = RTCSharingEngine(fig1)
        engine.evaluate("d.(b.c)+.c")
        assert engine.total_time > 0
        assert engine.queries_evaluated == 1
        engine.reset_metrics()
        assert engine.total_time == 0.0
        assert engine.queries_evaluated == 0

    def test_phase_times_populated(self, fig1):
        engine = RTCSharingEngine(fig1)
        engine.evaluate("d.(b.c)+.c")
        assert engine.timer.get("shared_data") > 0
        assert engine.timer.get("pre_join_rtc") > 0
        assert engine.timer.get("remainder") > 0

    def test_counters_opt_in(self, fig1):
        silent = RTCSharingEngine(fig1)
        counting = RTCSharingEngine(fig1, collect_counters=True)
        silent.evaluate("d.(b.c)+.c")
        counting.evaluate("d.(b.c)+.c")
        assert silent.counters is None
        assert counting.counters is not None
        assert counting.counters.total() > 0

    def test_strict_labels(self, fig1):
        engine = NoSharingEngine(fig1, strict_labels=True)
        with pytest.raises(UnknownLabelError):
            engine.evaluate("qq.a")

    def test_syntax_error_propagates(self, fig1):
        with pytest.raises(RPQSyntaxError):
            RTCSharingEngine(fig1).evaluate("a..b")

    def test_make_engine_factory(self, fig1):
        with pytest.warns(DeprecationWarning, match="make_engine"):
            assert isinstance(make_engine("no", fig1), NoSharingEngine)
        with pytest.warns(DeprecationWarning):
            assert isinstance(make_engine("FULL", fig1), FullSharingEngine)
        with pytest.warns(DeprecationWarning):
            assert isinstance(make_engine("rtc", fig1), RTCSharingEngine)

    def test_make_engine_unknown_name(self, fig1):
        from repro.errors import ReproError, UnknownEngineError

        with pytest.warns(DeprecationWarning):
            with pytest.raises(UnknownEngineError) as info:
                make_engine("quantum", fig1)
        assert isinstance(info.value, ReproError)
        # Old callers caught ValueError; the new error still is one.
        assert isinstance(info.value, ValueError)
        assert info.value.name == "quantum"
        assert "rtc" in info.value.available

    def test_invalid_clause_evaluator(self, fig1):
        with pytest.raises(ValueError):
            RTCSharingEngine(fig1, clause_evaluator="psychic")

    @pytest.mark.parametrize("evaluator", ["auto", "automaton", "label-join"])
    def test_clause_evaluator_modes_agree(self, fig1, evaluator):
        engine = RTCSharingEngine(fig1, clause_evaluator=evaluator)
        assert engine.evaluate("b.c") == {(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)}


class TestStarIdentitySemantics:
    def test_bare_star_includes_all_vertices(self, fig1):
        # (b.c)* must include (v, v) for every vertex, even isolated ones.
        result = RTCSharingEngine(fig1).evaluate("(b.c)*")
        for vertex in fig1.vertices():
            assert (vertex, vertex) in result

    def test_star_then_label(self):
        graph = labeled_cycle(3, "a")
        graph.add_edge(0, "b", 1)
        result = RTCSharingEngine(graph).evaluate("(a)*.b")
        assert result == eval_rpq(graph, "a*.b")
        assert (0, 1) in result  # zero iterations then b
