"""Tests for EvalBatchUnit (Algorithm 2) and its optimisation toggles."""

import itertools

import pytest

from repro.core.batch_unit import (
    BatchUnitOptions,
    apply_post,
    eval_batch_unit,
    join_pre_with_rtc,
)
from repro.core.rtc import compute_rtc
from repro.rpq.counters import OpCounters
from repro.rpq.evaluate import eval_rpq
from repro.rpq.restricted import RestrictedEvaluator

ALL_OPTION_COMBOS = [
    BatchUnitOptions(
        eliminate_redundant1=r1, eliminate_redundant2=r2, eliminate_useless2=u2
    )
    for r1, r2, u2 in itertools.product([True, False], repeat=3)
]


@pytest.fixture
def bc_rtc(fig1):
    return compute_rtc(eval_rpq(fig1, "b.c"))


class TestJoinPreWithRtc:
    def test_paper_batch_unit(self, fig1, bc_rtc):
        pre = eval_rpq(fig1, "d")  # {(7, 4)}
        joined = join_pre_with_rtc(pre, bc_rtc)
        # (d.(b.c)+)_G = {(7, 2), (7, 4), (7, 6)}.
        assert joined == {(7, 2), (7, 4), (7, 6)}

    def test_pre_end_outside_vr_contributes_nothing(self, fig1, bc_rtc):
        joined = join_pre_with_rtc({(0, 8)}, bc_rtc)
        assert joined == set()

    def test_seed_for_star(self, fig1, bc_rtc):
        pre = {(7, 4), (0, 8)}
        joined = join_pre_with_rtc(pre, bc_rtc, seed=pre)
        assert (0, 8) in joined  # zero-iteration survives
        assert (7, 4) in joined
        assert (7, 2) in joined

    @pytest.mark.parametrize("options", ALL_OPTION_COMBOS)
    def test_options_never_change_results(self, fig1, bc_rtc, options):
        pre = eval_rpq(fig1, "d") | eval_rpq(fig1, "c")
        reference = join_pre_with_rtc(pre, bc_rtc)
        assert join_pre_with_rtc(pre, bc_rtc, options=options) == reference

    def test_redundant1_elimination_reduces_walks(self, fig1, bc_rtc):
        # Two Pre pairs with same start whose ends are in the same SCC.
        pre = {(100, 2), (100, 4)}  # 2 and 4 share an SCC
        optimised = OpCounters()
        naive = OpCounters()
        join_pre_with_rtc(pre, bc_rtc, counters=optimised)
        join_pre_with_rtc(
            pre,
            bc_rtc,
            options=BatchUnitOptions(eliminate_redundant1=False),
            counters=naive,
        )
        assert optimised.closure_walk_starts == 1
        assert naive.closure_walk_starts == 2
        fully_naive = OpCounters()
        join_pre_with_rtc(
            pre,
            bc_rtc,
            options=BatchUnitOptions(
                eliminate_redundant1=False, eliminate_redundant2=False
            ),
            counters=fully_naive,
        )
        assert fully_naive.cartesian_outputs > optimised.cartesian_outputs

    def test_redundant2_elimination(self, fig1):
        # Build an RTC where two different source SCCs reach one SCC.
        rtc = compute_rtc({(0, 2), (1, 2), (2, 2)})
        pre = {(100, 0), (100, 1)}
        optimised = OpCounters()
        naive = OpCounters()
        join_pre_with_rtc(pre, rtc, counters=optimised)
        join_pre_with_rtc(
            pre,
            rtc,
            options=BatchUnitOptions(eliminate_redundant2=False),
            counters=naive,
        )
        assert naive.cartesian_outputs > optimised.cartesian_outputs

    def test_useless2_off_counts_dup_checks(self, fig1, bc_rtc):
        pre = eval_rpq(fig1, "d")
        with_checks = OpCounters()
        without_checks = OpCounters()
        join_pre_with_rtc(
            pre,
            bc_rtc,
            options=BatchUnitOptions(eliminate_useless2=False),
            counters=with_checks,
        )
        join_pre_with_rtc(pre, bc_rtc, counters=without_checks)
        assert with_checks.dup_checks > without_checks.dup_checks


class TestApplyPost:
    def test_epsilon_post_is_identity(self, fig1):
        pairs = {(1, 2), (3, 4)}
        assert apply_post(fig1, pairs, None) == pairs
        assert apply_post(fig1, pairs, RestrictedEvaluator("()")) == pairs

    def test_post_join(self, fig1):
        # (d.(b.c)+)_G joined with c: Example 2's final result.
        pairs = {(7, 2), (7, 4), (7, 6)}
        post = RestrictedEvaluator("c")
        assert apply_post(fig1, pairs, post) == {(7, 5), (7, 3)}

    def test_post_memoisation_single_eval_per_vertex(self, fig1):
        counters = OpCounters()
        pairs = {(1, 2), (9, 2), (5, 2)}  # same middle vertex three times
        apply_post(fig1, pairs, RestrictedEvaluator("c"), counters)
        assert counters.traversal_starts == 1


class TestEvalBatchUnit:
    def test_plus_full_pipeline(self, fig1, bc_rtc):
        pre = eval_rpq(fig1, "d")
        result = eval_batch_unit(
            fig1, pre, bc_rtc, "+", RestrictedEvaluator("c")
        )
        assert result == eval_rpq(fig1, "d.(b.c)+.c") == {(7, 5), (7, 3)}

    def test_star_full_pipeline(self, fig1, bc_rtc):
        pre = eval_rpq(fig1, "d")
        result = eval_batch_unit(
            fig1, pre, bc_rtc, "*", RestrictedEvaluator("c")
        )
        assert result == eval_rpq(fig1, "d.(b.c)*.c")

    def test_invalid_type(self, fig1, bc_rtc):
        with pytest.raises(ValueError):
            eval_batch_unit(fig1, set(), bc_rtc, "?", None)

    @pytest.mark.parametrize("options", ALL_OPTION_COMBOS)
    def test_all_option_combos_agree(self, fig1, bc_rtc, options):
        pre = eval_rpq(fig1, "d") | eval_rpq(fig1, "a")
        reference = eval_batch_unit(
            fig1, pre, bc_rtc, "+", RestrictedEvaluator("c")
        )
        assert (
            eval_batch_unit(
                fig1, pre, bc_rtc, "+", RestrictedEvaluator("c"), options=options
            )
            == reference
        )
