"""Tests for the shared-data caches and their statistics."""

import pytest

from repro.core.cache import (
    CacheStats,
    ClosureCache,
    RTCCache,
    make_key_function,
)
from repro.core.rtc import compute_rtc
from repro.regex.parser import parse


class TestKeyFunctions:
    def test_syntactic_keys(self):
        key = make_key_function("syntactic")
        assert key(parse("a.b")) == key(parse("a . b"))
        assert key(parse("a.b|a.c")) != key(parse("a.(b|c)"))

    def test_semantic_keys(self):
        key = make_key_function("semantic")
        assert key(parse("a.b|a.c")) == key(parse("a.(b|c)"))
        assert key(parse("a+")) != key(parse("a*"))

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            make_key_function("telepathic")


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)

    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0


class TestRTCCache:
    def test_lookup_store_cycle(self):
        cache = RTCCache()
        node = parse("a.b")
        key, value = cache.lookup(node)
        assert value is None
        assert cache.stats.misses == 1
        rtc = compute_rtc({(0, 1), (1, 0)})
        cache.store(key, rtc)
        assert cache.stats.entries == 1
        assert node in cache
        _key, again = cache.lookup(node)
        assert again is rtc
        assert cache.stats.hits == 1

    def test_total_shared_pairs(self):
        cache = RTCCache()
        cache.store("k1", compute_rtc({(0, 1), (1, 0)}))  # 1 SCC pair
        cache.store("k2", compute_rtc({(0, 1)}))  # 1 pair
        assert cache.total_shared_pairs() == 2

    def test_clear_keeps_stats(self):
        cache = RTCCache()
        cache.store("k", compute_rtc({(0, 1)}))
        cache.lookup(parse("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.entries == 0
        assert cache.stats.misses == 1


class TestClosureCache:
    def test_entry_size(self):
        entry = {0: frozenset({1, 2}), 1: frozenset(), 2: frozenset({0})}
        assert ClosureCache.entry_size(entry) == 3

    def test_total_shared_pairs(self):
        cache = ClosureCache()
        cache.store("k1", {0: frozenset({1, 2})})
        cache.store("k2", {5: frozenset({6})})
        assert cache.total_shared_pairs() == 3


class TestGetOrCompute:
    """The atomic miss path: one computation per key, race or no race."""

    def test_single_threaded_semantics(self):
        cache = RTCCache()
        node = parse("a.b")
        rtc = compute_rtc({(0, 1)})
        calls = []

        def factory():
            calls.append(1)
            return rtc

        key, value = cache.get_or_compute(node, factory)
        assert value is rtc
        assert cache.stats.misses == 1
        _key, again = cache.get_or_compute(node, factory)
        assert again is rtc
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert key == cache.key_for(node)

    def test_concurrent_misses_compute_once(self):
        import threading
        import time

        cache = RTCCache()
        node = parse("a.b")
        rtc = compute_rtc({(0, 1)})
        calls = []
        barrier = threading.Barrier(8)
        results = []

        def factory():
            calls.append(1)
            time.sleep(0.05)  # hold the latch long enough for real overlap
            return rtc

        def racer() -> None:
            barrier.wait()
            results.append(cache.get_or_compute(node, factory)[1])

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1, "concurrent misses must compute once"
        assert all(value is rtc for value in results)
        stats = cache.snapshot_stats()
        assert stats.misses == 1
        assert stats.hits == 7

    def test_failed_factory_releases_the_latch(self):
        import threading

        cache = RTCCache()
        node = parse("a.b")
        rtc = compute_rtc({(0, 1)})
        attempts = []
        owner_in_factory = threading.Event()
        gate = threading.Event()

        def failing():
            attempts.append(1)
            owner_in_factory.set()
            gate.wait(timeout=5)
            raise RuntimeError("boom")

        errors = []

        def owner() -> None:
            try:
                cache.get_or_compute(node, failing)
            except RuntimeError as error:
                errors.append(error)

        waiter_result = []

        def waiter() -> None:
            waiter_result.append(cache.get_or_compute(node, lambda: rtc)[1])

        owner_thread = threading.Thread(target=owner)
        owner_thread.start()
        assert owner_in_factory.wait(timeout=5)  # owner holds the latch
        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        gate.set()
        owner_thread.join(timeout=5)
        waiter_thread.join(timeout=5)
        assert len(errors) == 1, "the owner sees its own factory error"
        assert waiter_result == [rtc], "waiters retry after an owner failure"
        assert cache.snapshot_stats().misses == 2  # two computation attempts


class TestGetOrComputeReentrancy:
    def test_same_key_reentrant_factory_does_not_deadlock(self):
        """A factory may recurse into its own key (semantic-mode collisions)."""
        cache = RTCCache()
        node = parse("a.b")
        inner_rtc = compute_rtc({(0, 1)})
        outer_rtc = compute_rtc({(0, 1), (1, 0)})

        def outer_factory():
            _key, nested = cache.get_or_compute(node, lambda: inner_rtc)
            assert nested is inner_rtc
            return outer_rtc

        key, value = cache.get_or_compute(node, outer_factory)
        assert value is outer_rtc, "the enclosing computation wins"
        assert cache.stats.misses == 2  # two computation attempts
        _key, cached = cache.get_or_compute(node, lambda: None)
        assert cached is outer_rtc
        # The in-flight latch is released: a later miss works normally.
        cache.clear()
        _key, again = cache.get_or_compute(node, lambda: inner_rtc)
        assert again is inner_rtc

    def test_semantic_mode_nested_equal_body_terminates(self, fig1):
        """Engine-level regression: evaluating a query whose nested closure
        body is language-equal to the enclosing one must terminate (it
        used to wait on its own in-flight latch forever)."""
        from repro.core.engines import RTCSharingEngine

        # The outer closure body (b*)+ and its own nested body b* both
        # canonicalise to the language b*, so evaluating the outer body
        # re-enters get_or_compute on the exact key it owns.
        query = "((b*)+)+"
        semantic = RTCSharingEngine(fig1, cache_mode="semantic")
        syntactic = RTCSharingEngine(fig1)
        assert semantic.evaluate(query) == syntactic.evaluate(query)
        assert semantic.rtc_cache.stats.misses >= 3  # re-entrant attempts


class TestEnginesComputeOnce:
    def test_worker_engines_share_one_rtc_construction(self, fig1):
        """Two engines over one cache, racing the same body: one miss."""
        import threading

        from repro.core.engines import RTCSharingEngine

        primary = RTCSharingEngine(fig1)
        secondary = RTCSharingEngine(fig1)
        secondary.rtc_cache = primary.rtc_cache  # the server's worker setup
        barrier = threading.Barrier(2)
        results = []

        def run(engine) -> None:
            barrier.wait()
            results.append(engine.evaluate("a.(b.c)+"))

        threads = [
            threading.Thread(target=run, args=(engine,))
            for engine in (primary, secondary)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results[0] == results[1]
        assert primary.rtc_cache.snapshot_stats().misses == 1


class TestThreadSafety:
    """The concurrency contract: individually atomic operations."""

    def test_snapshot_stats_is_a_copy(self):
        cache = RTCCache()
        node = parse("a")
        cache.lookup(node)
        snapshot = cache.snapshot_stats()
        cache.lookup(node)
        assert snapshot.misses == 1
        assert cache.stats.misses == 2

    def test_concurrent_lookup_store_counts_consistently(self):
        import threading

        cache = RTCCache()
        node = parse("a.b")
        rtc = compute_rtc({(0, 1)})
        workers, rounds = 8, 200

        def hammer() -> None:
            for _ in range(rounds):
                key, value = cache.lookup(node)
                if value is None:
                    cache.store(key, rtc)
                cache.total_shared_pairs()

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.snapshot_stats()
        assert stats.hits + stats.misses == workers * rounds
        assert stats.entries == 1
        _key, value = cache.lookup(node)
        assert value is rtc
