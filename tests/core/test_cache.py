"""Tests for the shared-data caches and their statistics."""

import pytest

from repro.core.cache import (
    CacheStats,
    ClosureCache,
    RTCCache,
    make_key_function,
)
from repro.core.rtc import compute_rtc
from repro.regex.parser import parse


class TestKeyFunctions:
    def test_syntactic_keys(self):
        key = make_key_function("syntactic")
        assert key(parse("a.b")) == key(parse("a . b"))
        assert key(parse("a.b|a.c")) != key(parse("a.(b|c)"))

    def test_semantic_keys(self):
        key = make_key_function("semantic")
        assert key(parse("a.b|a.c")) == key(parse("a.(b|c)"))
        assert key(parse("a+")) != key(parse("a*"))

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            make_key_function("telepathic")


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)

    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0


class TestRTCCache:
    def test_lookup_store_cycle(self):
        cache = RTCCache()
        node = parse("a.b")
        key, value = cache.lookup(node)
        assert value is None
        assert cache.stats.misses == 1
        rtc = compute_rtc({(0, 1), (1, 0)})
        cache.store(key, rtc)
        assert cache.stats.entries == 1
        assert node in cache
        _key, again = cache.lookup(node)
        assert again is rtc
        assert cache.stats.hits == 1

    def test_total_shared_pairs(self):
        cache = RTCCache()
        cache.store("k1", compute_rtc({(0, 1), (1, 0)}))  # 1 SCC pair
        cache.store("k2", compute_rtc({(0, 1)}))  # 1 pair
        assert cache.total_shared_pairs() == 2

    def test_clear_keeps_stats(self):
        cache = RTCCache()
        cache.store("k", compute_rtc({(0, 1)}))
        cache.lookup(parse("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.entries == 0
        assert cache.stats.misses == 1


class TestClosureCache:
    def test_entry_size(self):
        entry = {0: frozenset({1, 2}), 1: frozenset(), 2: frozenset({0})}
        assert ClosureCache.entry_size(entry) == 3

    def test_total_shared_pairs(self):
        cache = ClosureCache()
        cache.store("k1", {0: frozenset({1, 2})})
        cache.store("k2", {5: frozenset({6})})
        assert cache.total_shared_pairs() == 3


class TestThreadSafety:
    """The concurrency contract: individually atomic operations."""

    def test_snapshot_stats_is_a_copy(self):
        cache = RTCCache()
        node = parse("a")
        cache.lookup(node)
        snapshot = cache.snapshot_stats()
        cache.lookup(node)
        assert snapshot.misses == 1
        assert cache.stats.misses == 2

    def test_concurrent_lookup_store_counts_consistently(self):
        import threading

        cache = RTCCache()
        node = parse("a.b")
        rtc = compute_rtc({(0, 1)})
        workers, rounds = 8, 200

        def hammer() -> None:
            for _ in range(rounds):
                key, value = cache.lookup(node)
                if value is None:
                    cache.store(key, rtc)
                cache.total_shared_pairs()

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.snapshot_stats()
        assert stats.hits + stats.misses == workers * rounds
        assert stats.entries == 1
        _key, value = cache.lookup(node)
        assert value is rtc
