"""Tests for the common-sub-query sharing analyser."""

import pytest

from repro.core.sharing_analysis import analyse_sharing


class TestAnalysis:
    def test_shared_body_detected(self, fig1):
        report = analyse_sharing(
            fig1, ["a.(b.c)+", "d.(b.c)+.c", "c.(c)+"]
        )
        assert report.num_queries == 3
        shared = report.shared_bodies
        assert len(shared) == 1
        assert shared[0].representative == "b.c"
        assert shared[0].occurrences == 2
        assert shared[0].query_indexes == (0, 1)
        assert shared[0].is_shared

    def test_no_sharing(self, fig1):
        report = analyse_sharing(fig1, ["a.(b)+", "a.(c)+"])
        assert report.shared_bodies == []
        assert report.total_estimated_saving == 0.0

    def test_closure_free_queries(self, fig1):
        report = analyse_sharing(fig1, ["a.b", "c"])
        assert report.bodies == []
        assert report.num_batch_units == 2

    def test_nested_bodies_counted(self, fig1):
        # (a.b)*.b+ nests: bodies a.b and b both appear.
        report = analyse_sharing(fig1, ["(a.b)*.b+.(a.b+.c)+"])
        representatives = {body.representative for body in report.bodies}
        assert "a.b+.c" in representatives
        assert "b" in representatives
        assert "a.b" in representatives

    def test_example7_sharing(self, fig1):
        # The paper's Fig. 7: the third query reuses the RTCs of a.b and b.
        report = analyse_sharing(
            fig1, ["a", "a.(a.b)+.b", "(a.b)*.b+.(a.b+.c)+"]
        )
        by_repr = {body.representative: body for body in report.bodies}
        assert by_repr["a.b"].occurrences >= 2
        assert by_repr["a.b"].is_shared

    def test_semantic_mode_identifies_equal_languages(self, fig1):
        queries = ["a.(b.c|b.b)+", "a.(b.(c|b))+"]
        syntactic = analyse_sharing(fig1, queries, cache_mode="syntactic")
        semantic = analyse_sharing(fig1, queries, cache_mode="semantic")
        assert len(syntactic.shared_bodies) == 0
        assert len(semantic.shared_bodies) == 1
        assert semantic.shared_bodies[0].occurrences == 2

    def test_estimated_saving_positive_for_shared(self, fig1):
        report = analyse_sharing(fig1, ["a.(b.c)+", "d.(b.c)+"])
        assert report.total_estimated_saving > 0
        body = report.shared_bodies[0]
        assert body.estimated_saving == pytest.approx(body.estimated_cost)

    def test_describe_readable(self, fig1):
        report = analyse_sharing(fig1, ["a.(b.c)+", "d.(b.c)+.c"])
        text = report.describe()
        assert "2 queries" in text
        assert "(b.c)+" in text
        assert "x2" in text

    def test_union_clauses_counted_separately(self, fig1):
        report = analyse_sharing(fig1, ["a.(b)+|c.(b)+"])
        by_repr = {body.representative: body for body in report.bodies}
        assert by_repr["b"].occurrences == 2  # one per clause
