"""Tests for edge deletion in the incremental RTC (rebuild path)."""

import pytest

from repro.core.incremental import IncrementalRTC
from repro.errors import GraphError
from repro.graph.multigraph import LabeledMultigraph
from repro.rpq.evaluate import eval_rpq


class TestRemoveEdge:
    def test_breaks_reachability(self):
        graph = LabeledMultigraph.from_edges([(0, "a", 1), (1, "a", 2)])
        incremental = IncrementalRTC(graph, "a")
        assert incremental.reaches(0, 2)
        incremental.remove_edge(1, "a", 2)
        assert not incremental.reaches(0, 2)
        assert incremental.reaches(0, 1)
        assert incremental.full_rebuilds == 1

    def test_splits_scc(self):
        graph = LabeledMultigraph.from_edges(
            [(0, "a", 1), (1, "a", 2), (2, "a", 0)]
        )
        incremental = IncrementalRTC(graph, "a")
        assert incremental.reaches(0, 0)
        incremental.remove_edge(2, "a", 0)
        assert not incremental.reaches(0, 0)
        assert incremental.plus_pairs() == {(0, 1), (0, 2), (1, 2)}

    def test_graph_object_updated_in_place(self):
        graph = LabeledMultigraph.from_edges([(0, "a", 1), (1, "b", 2)])
        incremental = IncrementalRTC(graph, "a")
        incremental.remove_edge(1, "b", 2)
        # The caller's graph reference observes the deletion.
        assert not graph.has_edge(1, "b", 2)
        assert graph.has_edge(0, "a", 1)
        assert 2 in graph  # vertices survive

    def test_missing_edge_raises(self):
        graph = LabeledMultigraph.from_edges([(0, "a", 1)])
        incremental = IncrementalRTC(graph, "a")
        with pytest.raises(GraphError, match="not in the graph"):
            incremental.remove_edge(0, "a", 99)

    def test_mixed_insert_delete_sequence(self):
        import random

        rng = random.Random(7)
        graph = LabeledMultigraph()
        for vertex in range(6):
            graph.add_vertex(vertex)
        incremental = IncrementalRTC(graph, "a")
        present: set = set()
        for _step in range(20):
            source, target = rng.randrange(6), rng.randrange(6)
            if (source, target) in present and rng.random() < 0.4:
                incremental.remove_edge(source, "a", target)
                present.discard((source, target))
            elif (source, target) not in present:
                incremental.add_edge(source, "a", target)
                present.add((source, target))
            expected = eval_rpq(graph, "a+")
            assert incremental.plus_pairs() == expected

    def test_remove_then_reinsert(self):
        graph = LabeledMultigraph.from_edges([(0, "a", 1), (1, "a", 0)])
        incremental = IncrementalRTC(graph, "a")
        incremental.remove_edge(1, "a", 0)
        incremental.add_edge(1, "a", 0)
        assert incremental.reaches(0, 0)
        assert incremental.plus_pairs() == eval_rpq(graph, "a+")
