"""Tests for RPQ-based graph reduction (Section III-A/B)."""

import pytest

from repro.core.reduction import edge_level_reduce, reduce_graph, vertex_level_reduce
from repro.graph.builders import labeled_cycle, labeled_path
from repro.graph.multigraph import LabeledMultigraph
from repro.rpq.evaluate import eval_rpq


class TestEdgeLevelReduction:
    def test_paper_example3(self, fig1):
        gr = edge_level_reduce(fig1, "b.c")
        assert gr.edge_set() == {(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)}

    def test_irrelevant_vertices_excluded(self, fig1):
        # v8, v9 (e/f edges) and v0, v7 are not on any b·c path.
        gr = edge_level_reduce(fig1, "b.c")
        for vertex in (0, 7, 8, 9):
            assert vertex not in gr

    def test_parallel_paths_collapse(self):
        # Two a.b paths from 0 to 3 become one reduced edge.
        graph = LabeledMultigraph.from_edges(
            [(0, "a", 1), (1, "b", 3), (0, "a", 2), (2, "b", 3)]
        )
        gr = edge_level_reduce(graph, "a.b")
        assert gr.edge_set() == {(0, 3)}

    def test_custom_evaluator_is_used(self, fig1):
        calls = []

        def spy(graph, node):
            calls.append(node)
            return {(1, 2)}

        gr = edge_level_reduce(fig1, "b.c", evaluator=spy)
        assert gr.edge_set() == {(1, 2)}
        assert len(calls) == 1

    def test_reduction_of_closure_body_with_union(self, fig1):
        gr = edge_level_reduce(fig1, "b|c")
        assert gr.edge_set() == eval_rpq(fig1, "b|c")


class TestVertexLevelReduction:
    def test_paper_example5(self, fig1):
        gr = edge_level_reduce(fig1, "b.c")
        condensation = vertex_level_reduce(gr)
        assert condensation.num_sccs == 3
        assert sorted(condensation.scc_sizes()) == [1, 2, 2]


class TestReduceGraph:
    def test_statistics(self, fig1):
        result = reduce_graph(fig1, "b.c")
        assert result.num_gr_vertices == 5
        assert result.num_gr_edges == 5
        assert result.num_condensed_vertices == 3
        assert result.num_condensed_edges == 3
        assert result.average_scc_size == pytest.approx(5 / 3)

    def test_rtc_expansion_equals_plus(self, fig1):
        result = reduce_graph(fig1, "b.c")
        assert result.rtc.expand() == eval_rpq(fig1, "(b.c)+")

    def test_cycle_collapses_to_point(self):
        graph = labeled_cycle(6)
        result = reduce_graph(graph, "a")
        assert result.num_gr_vertices == 6
        assert result.num_condensed_vertices == 1
        assert result.rtc.num_pairs == 1  # one self-reaching SCC

    def test_path_has_no_reduction(self):
        graph = labeled_path(4)
        result = reduce_graph(graph, "a")
        assert result.num_condensed_vertices == result.num_gr_vertices
        assert result.average_scc_size == 1.0

    def test_empty_result_reduction(self, fig1):
        result = reduce_graph(fig1, "zz")
        assert result.num_gr_vertices == 0
        assert result.rtc.expand() == set()
