"""Tests for the static query planner/explainer."""

import pytest

from repro.core.engines import RTCSharingEngine
from repro.core.explain import explain
from repro.errors import RPQSyntaxError


class TestExplainStandalone:
    def test_closure_free_clause(self, fig1):
        plan = explain(fig1, "b.c")
        assert len(plan.clauses) == 1
        clause = plan.clauses[0]
        assert not clause.is_batch_unit
        assert clause.post_strategy == "label-sequence"
        assert clause.estimated_cost > 0

    def test_batch_unit_decomposition(self, fig1):
        plan = explain(fig1, "d.(b.c)+.c")
        clause = plan.clauses[0]
        assert clause.is_batch_unit
        assert clause.pre == "d"
        assert clause.r == "b.c"
        assert clause.closure_type == "+"
        assert clause.post == "c"
        assert clause.post_strategy == "label-sequence"

    def test_union_produces_multiple_clauses(self, fig1):
        plan = explain(fig1, "a|b.(c)+")
        assert len(plan.clauses) == 2
        kinds = {clause.is_batch_unit for clause in plan.clauses}
        assert kinds == {True, False}

    def test_epsilon_post(self, fig1):
        plan = explain(fig1, "a.(b.c)+")
        assert plan.clauses[0].post_strategy == "epsilon"

    def test_no_cache_given(self, fig1):
        plan = explain(fig1, "d.(b.c)+.c")
        assert plan.clauses[0].rtc_key is None
        assert plan.clauses[0].rtc_cached is False

    def test_syntax_errors_propagate(self, fig1):
        with pytest.raises(RPQSyntaxError):
            explain(fig1, "a..b")


class TestEngineExplain:
    def test_cache_status_reported(self, fig1):
        engine = RTCSharingEngine(fig1)
        cold = engine.explain("d.(b.c)+.c")
        assert cold.clauses[0].rtc_cached is False
        assert cold.clauses[0].rtc_key == "b.c"
        engine.evaluate("a.(b.c)+")
        warm = engine.explain("d.(b.c)+.c")
        assert warm.clauses[0].rtc_cached is True

    def test_explain_has_no_side_effects(self, fig1):
        engine = RTCSharingEngine(fig1)
        engine.explain("d.(b.c)+.c")
        assert engine.rtc_cache.stats.lookups == 0
        assert engine.shared_data_size() == 0
        assert engine.queries_evaluated == 0

    def test_describe_output(self, fig1):
        engine = RTCSharingEngine(fig1)
        engine.evaluate("a.(b.c)+")
        text = engine.explain("d.(b.c)+.c|a").describe()
        assert "clauses: 2" in text
        assert "RTC key HIT" in text
        assert "Eq. 6-10" in text
        assert "EvalRPQwithoutKC" in text

    def test_semantic_cache_keys_in_plan(self, fig1):
        engine = RTCSharingEngine(fig1, cache_mode="semantic")
        engine.evaluate("a.(b.c|b.b)+")
        plan = engine.explain("d.(b.(c|b))+")  # language-equal body
        assert plan.clauses[0].rtc_cached is True
