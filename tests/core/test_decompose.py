"""Tests for clause decomposition into (Pre, R, Type, Post) -- Algorithm 1."""

from repro.core.decompose import decompose_clause
from repro.core.dnf import to_dnf
from repro.regex.ast import EPSILON
from repro.regex.parser import parse


def decompose(query: str):
    clauses = to_dnf(parse(query))
    assert len(clauses) == 1, "helper expects single-clause queries"
    return decompose_clause(clauses[0])


class TestNoClosure:
    def test_plain_label(self):
        unit = decompose("a")
        assert unit.type is None
        assert unit.r is None
        assert unit.pre == EPSILON
        assert unit.post.to_string() == "a"
        assert unit.post_labels == ("a",)
        assert not unit.has_closure

    def test_label_sequence(self):
        unit = decompose("a.b.c")
        assert unit.type is None
        assert unit.post_labels == ("a", "b", "c")

    def test_epsilon_clause(self):
        unit = decompose("()")
        assert unit.type is None
        assert unit.post == EPSILON
        assert unit.post_labels == ()


class TestPaperExample7:
    def test_simple_batch_unit(self):
        # a·(a·b)+·b: Pre=a, R=a·b, Type=+, Post=b.
        unit = decompose("a.(a.b)+.b")
        assert unit.pre.to_string() == "a"
        assert unit.r.to_string() == "a.b"
        assert unit.type == "+"
        assert unit.post_labels == ("b",)

    def test_nested_multiple_closures(self):
        # (a·b)*·b+·(a·b+·c)+: Pre=(a·b)*·b+, R=a·b+·c, Type=+, Post=ε.
        unit = decompose("(a.b)*.b+.(a.b+.c)+")
        assert unit.pre.to_string() == "(a.b)*.b+"
        assert unit.r.to_string() == "a.b+.c"
        assert unit.type == "+"
        assert unit.post == EPSILON
        assert unit.post_labels == ()

    def test_recursive_pre_decomposition(self):
        # Decomposing the Pre of the previous unit peels the next closure.
        outer = decompose("(a.b)*.b+.(a.b+.c)+")
        inner_clauses = to_dnf(outer.pre)
        assert len(inner_clauses) == 1
        inner = decompose_clause(inner_clauses[0])
        assert inner.pre.to_string() == "(a.b)*"
        assert inner.r.to_string() == "b"
        assert inner.type == "+"
        assert inner.post == EPSILON


class TestSplitting:
    def test_rightmost_closure_wins(self):
        unit = decompose("a+.b.c+.d")
        assert unit.r.to_string() == "c"
        assert unit.pre.to_string() == "a+.b"
        assert unit.post_labels == ("d",)

    def test_star_type(self):
        unit = decompose("a.(b.c)*")
        assert unit.type == "*"
        assert unit.r.to_string() == "b.c"
        assert unit.post == EPSILON

    def test_leading_closure_empty_pre(self):
        unit = decompose("(a.b)+.c")
        assert unit.pre == EPSILON
        assert unit.post_labels == ("c",)

    def test_post_is_closure_free_by_construction(self):
        from repro.regex.ast import contains_closure

        unit = decompose("a+.b+.c.d")
        assert not contains_closure(unit.post)

    def test_str_representations(self):
        assert "Post=" in str(decompose("a"))
        assert "Type=+" in str(decompose("a.(b)+"))
