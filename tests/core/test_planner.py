"""Tests for the batch-unit ordering planner (the paper's future work)."""

from repro.core.planner import estimate_cost, plan_order
from repro.regex.parser import parse


class TestEstimateCost:
    def test_rarer_labels_cost_less(self, fig1):
        assert estimate_cost(fig1, parse("d")) < estimate_cost(fig1, parse("c"))

    def test_closures_cost_more(self, fig1):
        assert estimate_cost(fig1, parse("b+")) > estimate_cost(fig1, parse("b"))

    def test_concatenation_multiplies(self, fig1):
        assert estimate_cost(fig1, parse("b.c")) == estimate_cost(
            fig1, parse("b")
        ) * estimate_cost(fig1, parse("c"))

    def test_unknown_label_floor(self, fig1):
        assert estimate_cost(fig1, parse("zz")) == 1.0


class TestPlanOrder:
    QUERIES = [
        "c.(c.c)+.c",      # expensive closure body
        "a.(d)+.b",        # cheap closure body (d is rare)
        "b.c",             # closure-free
        "b.(d)+.c",        # shares R=d with query 1... (same key 'd')
    ]

    def test_all_units_planned(self, fig1):
        planned = plan_order(fig1, self.QUERIES)
        assert len(planned) == 4
        assert {item.query_index for item in planned} == {0, 1, 2, 3}

    def test_no_op_plan_keeps_order(self, fig1):
        planned = plan_order(
            fig1, self.QUERIES, group_shared=False, cheap_first=False
        )
        assert [item.query_index for item in planned] == [0, 1, 2, 3]

    def test_shared_bodies_grouped_adjacently(self, fig1):
        planned = plan_order(fig1, self.QUERIES)
        keys = [item.share_key for item in planned if item.share_key == "d"]
        positions = [
            index
            for index, item in enumerate(planned)
            if item.share_key == "d"
        ]
        assert len(keys) == 2
        assert positions[1] == positions[0] + 1  # adjacent

    def test_cheap_first_ordering(self, fig1):
        planned = plan_order(fig1, self.QUERIES, group_shared=False)
        costs = [item.cost for item in planned]
        assert costs == sorted(costs)

    def test_closure_free_units_have_no_share_key(self, fig1):
        planned = plan_order(fig1, ["b.c"])
        assert planned[0].share_key is None
        assert planned[0].unit.type is None

    def test_multi_clause_queries_expand(self, fig1):
        planned = plan_order(fig1, ["a|b.(c)+"])
        assert len(planned) == 2
