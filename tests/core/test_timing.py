"""Tests for the phase timer."""

import time

from repro.core.timing import (
    ALL_PHASES,
    PHASE_PRE_JOIN,
    PHASE_REMAINDER,
    PHASE_SHARED_DATA,
    PhaseTimer,
)


class TestPhaseTimer:
    def test_accumulates_spans(self):
        timer = PhaseTimer()
        with timer.measure("x"):
            time.sleep(0.002)
        with timer.measure("x"):
            time.sleep(0.002)
        assert timer.get("x") >= 0.004

    def test_unmeasured_phase_is_zero(self):
        assert PhaseTimer().get("nothing") == 0.0

    def test_total_and_snapshot(self):
        timer = PhaseTimer()
        with timer.measure("a"):
            pass
        with timer.measure("b"):
            pass
        snapshot = timer.snapshot()
        assert set(snapshot) == {"a", "b"}
        assert timer.total() == sum(snapshot.values())
        snapshot["a"] = 999  # copies, not views
        assert timer.get("a") != 999

    def test_reset(self):
        timer = PhaseTimer()
        with timer.measure("a"):
            pass
        timer.reset()
        assert timer.total() == 0.0

    def test_records_even_on_exception(self):
        timer = PhaseTimer()
        try:
            with timer.measure("risky"):
                time.sleep(0.001)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.get("risky") > 0

    def test_phase_constants(self):
        assert ALL_PHASES == (PHASE_SHARED_DATA, PHASE_PRE_JOIN, PHASE_REMAINDER)
