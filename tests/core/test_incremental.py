"""Tests for incremental RTC maintenance under edge insertions."""

import random

import pytest

from repro.core.incremental import IncrementalRTC
from repro.core.rtc import compute_rtc
from repro.errors import GraphError
from repro.graph.multigraph import LabeledMultigraph
from repro.rpq.evaluate import eval_rpq


def from_scratch(graph, body):
    """The batch pipeline the incremental structure must always equal."""
    rg = eval_rpq(graph, body)
    if _nullable(body):
        rg = rg | {(v, v) for v in graph.vertices()}
    return compute_rtc(rg)


def _nullable(body):
    from repro.regex.nfa import compile_nfa
    from repro.regex.parser import parse

    return compile_nfa(parse(body)).nullable


def assert_equal_state(incremental: IncrementalRTC, body: str):
    expected = from_scratch(incremental.graph, body)
    assert incremental.plus_pairs() == expected.expand()
    snapshot = incremental.snapshot()
    assert snapshot.expand() == expected.expand()


class TestBasics:
    def test_initial_state_matches_batch(self, fig1):
        incremental = IncrementalRTC(fig1, "b.c")
        assert incremental.plus_pairs() == eval_rpq(fig1, "(b.c)+")

    def test_acyclic_insertion(self):
        graph = LabeledMultigraph.from_edges([(0, "a", 1)])
        incremental = IncrementalRTC(graph, "a")
        incremental.add_edge(1, "a", 2)
        assert incremental.plus_pairs() == {(0, 1), (1, 2), (0, 2)}
        assert incremental.full_rebuilds == 0
        assert incremental.incremental_updates > 0

    def test_cycle_insertion_falls_back(self):
        graph = LabeledMultigraph.from_edges([(0, "a", 1), (1, "a", 2)])
        incremental = IncrementalRTC(graph, "a")
        incremental.add_edge(2, "a", 0)  # closes the 3-cycle
        assert incremental.reaches(0, 0)
        assert incremental.full_rebuilds == 1
        assert_equal_state(incremental, "a")

    def test_self_loop_insertion(self):
        graph = LabeledMultigraph.from_edges([(0, "a", 1)])
        incremental = IncrementalRTC(graph, "a")
        incremental.add_edge(1, "a", 1)
        assert incremental.reaches(1, 1)
        assert not incremental.reaches(0, 0)
        assert_equal_state(incremental, "a")

    def test_new_vertices_appear(self):
        graph = LabeledMultigraph.from_edges([(0, "a", 1)])
        incremental = IncrementalRTC(graph, "a")
        incremental.add_edge(5, "a", 6)
        assert incremental.reaches(5, 6)
        assert_equal_state(incremental, "a")

    def test_irrelevant_label_is_noop(self, fig1):
        incremental = IncrementalRTC(fig1, "b.c")
        before = incremental.plus_pairs()
        incremental.add_edge(0, "zz", 9)
        assert incremental.plus_pairs() == before

    def test_duplicate_edge_raises_and_preserves_state(self):
        graph = LabeledMultigraph.from_edges([(0, "a", 1)])
        incremental = IncrementalRTC(graph, "a")
        before = incremental.plus_pairs()
        with pytest.raises(GraphError):
            incremental.add_edge(0, "a", 1)
        assert incremental.plus_pairs() == before


class TestMultiLabelBodies:
    def test_concatenation_body(self, fig1):
        incremental = IncrementalRTC(fig1, "b.c")
        # New edge v3 -c-> v7 creates the b.c path (v2, v7) via v2-b->v3.
        incremental.add_edge(3, "c", 7)
        assert_equal_state(incremental, "b.c")
        assert incremental.reaches(2, 7)

    def test_mid_path_edge(self, fig1):
        incremental = IncrementalRTC(fig1, "b.c.c")
        incremental.add_edge(9, "b", 1)  # b then c.c: 9 -> 5 etc.
        assert_equal_state(incremental, "b.c.c")

    def test_union_body(self, fig1):
        incremental = IncrementalRTC(fig1, "b|e")
        incremental.add_edge(4, "e", 0)
        assert_equal_state(incremental, "b|e")

    def test_nullable_body(self):
        graph = LabeledMultigraph.from_edges([(0, "a", 1)])
        incremental = IncrementalRTC(graph, "a?")
        incremental.add_edge(2, "a", 3)
        # a? is nullable: every vertex must reach itself in (a?)+.
        for vertex in (0, 1, 2, 3):
            assert incremental.reaches(vertex, vertex)
        assert_equal_state(incremental, "a?")


class TestRandomisedAgainstBatch:
    @pytest.mark.parametrize("seed", range(6))
    def test_insertion_sequences(self, seed):
        rng = random.Random(seed)
        graph = LabeledMultigraph()
        size = rng.randint(3, 8)
        for vertex in range(size):
            graph.add_vertex(vertex)
        body = rng.choice(["a", "a.b", "a|b"])
        incremental = IncrementalRTC(graph, body)
        for _step in range(18):
            source = rng.randrange(size)
            target = rng.randrange(size)
            label = rng.choice("ab")
            if graph.has_edge(source, label, target):
                continue
            incremental.add_edge(source, label, target)
            assert_equal_state(incremental, body)

    def test_mostly_incremental_on_dags(self):
        # Forward-only edges never merge SCCs: zero full rebuilds.
        rng = random.Random(4)
        graph = LabeledMultigraph()
        for vertex in range(12):
            graph.add_vertex(vertex)
        incremental = IncrementalRTC(graph, "a")
        for _step in range(25):
            source = rng.randrange(11)
            target = rng.randrange(source + 1, 12)
            if not graph.has_edge(source, "a", target):
                incremental.add_edge(source, "a", target)
        assert incremental.full_rebuilds == 0
        assert_equal_state(incremental, "a")
