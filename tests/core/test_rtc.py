"""Tests for the reduced transitive closure structure (Section III-C)."""

import pytest

from repro.core.rtc import compute_rtc
from repro.graph.digraph import DiGraph
from repro.graph.transitive_closure import tc_bfs
from repro.rpq.evaluate import eval_rpq

PAPER_GBC = {(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)}


class TestComputeRtc:
    def test_accepts_pairs_or_digraph(self):
        from_pairs = compute_rtc(PAPER_GBC)
        from_graph = compute_rtc(DiGraph.from_pairs(PAPER_GBC))
        assert from_pairs.expand() == from_graph.expand()

    def test_paper_example6(self):
        # TC(Ḡ_{b·c}) has 3 pairs: two self-loops and one cross edge.
        rtc = compute_rtc(PAPER_GBC)
        assert rtc.num_sccs == 3
        assert rtc.num_pairs == 3
        s24 = rtc.scc_of[2]
        s35 = rtc.scc_of[3]
        s6 = rtc.scc_of[6]
        assert set(rtc.pairs()) == {(s24, s24), (s24, s6), (s35, s35)}

    def test_expand_matches_example4(self):
        rtc = compute_rtc(PAPER_GBC)
        assert rtc.expand() == {
            (2, 2), (2, 4), (2, 6), (3, 3), (3, 5),
            (4, 2), (4, 4), (4, 6), (5, 3), (5, 5),
        }

    def test_num_expanded_pairs_without_materialising(self):
        rtc = compute_rtc(PAPER_GBC)
        assert rtc.num_expanded_pairs == len(rtc.expand()) == 10

    def test_empty_input(self):
        rtc = compute_rtc(set())
        assert rtc.num_sccs == 0
        assert rtc.num_pairs == 0
        assert rtc.expand() == set()

    def test_self_loop_vertex(self):
        rtc = compute_rtc({(0, 0), (0, 1)})
        assert rtc.expand() == {(0, 0), (0, 1)}

    def test_sizes_recorded(self):
        rtc = compute_rtc(PAPER_GBC)
        assert rtc.num_gr_vertices == 5
        assert rtc.num_gr_edges == 5


class TestSemantics:
    def test_reaches(self):
        rtc = compute_rtc(PAPER_GBC)
        assert rtc.reaches(2, 6)
        assert rtc.reaches(2, 2)
        assert rtc.reaches(4, 6)
        assert not rtc.reaches(6, 2)
        assert not rtc.reaches(6, 6)
        assert not rtc.reaches(99, 2)
        assert not rtc.reaches(2, 99)

    def test_ends_from(self):
        rtc = compute_rtc(PAPER_GBC)
        assert set(rtc.ends_from(2)) == {2, 4, 6}
        assert set(rtc.ends_from(6)) == set()
        assert set(rtc.ends_from(99)) == set()

    def test_expand_equals_tc_of_gr_lemma1(self, fig1):
        # Lemma 1 + Lemma 3: RTC expansion == TC(G_R) == (b.c)+_G.
        rg = eval_rpq(fig1, "b.c")
        rtc = compute_rtc(rg)
        assert rtc.expand() == tc_bfs(DiGraph.from_pairs(rg))
        assert rtc.expand() == eval_rpq(fig1, "(b.c)+")

    @pytest.mark.parametrize("seed", range(6))
    def test_expand_equals_bfs_closure_random(self, seed):
        import random

        rng = random.Random(seed)
        size = rng.randint(2, 15)
        pairs = {
            (rng.randrange(size), rng.randrange(size))
            for _ in range(rng.randint(1, 3 * size))
        }
        rtc = compute_rtc(pairs)
        assert rtc.expand() == tc_bfs(DiGraph.from_pairs(pairs))
        assert rtc.num_expanded_pairs == len(rtc.expand())

    def test_rtc_smaller_than_closure_on_cyclic_graph(self):
        # A 10-cycle: full closure is 100 pairs, RTC is 1 pair.
        pairs = {(i, (i + 1) % 10) for i in range(10)}
        rtc = compute_rtc(pairs)
        assert rtc.num_pairs == 1
        assert rtc.num_expanded_pairs == 100
