"""Tests for RTC serialisation (JSON round-trips, cache persistence)."""

import json

import pytest

from repro.core.cache import RTCCache
from repro.core.rtc import compute_rtc
from repro.core.serialize import (
    RtcFormatError,
    load_cache,
    load_rtc,
    rtc_from_dict,
    rtc_to_dict,
    save_cache,
    save_rtc,
)
from repro.rpq.evaluate import eval_rpq

PAPER_GBC = {(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)}


def roundtrip(rtc):
    return rtc_from_dict(rtc_to_dict(rtc))


class TestRoundtrip:
    def test_semantics_preserved(self):
        original = compute_rtc(PAPER_GBC)
        restored = roundtrip(original)
        assert restored.expand() == original.expand()
        assert restored.num_pairs == original.num_pairs
        assert restored.num_sccs == original.num_sccs
        assert restored.num_gr_vertices == original.num_gr_vertices
        assert restored.num_gr_edges == original.num_gr_edges

    def test_reaches_preserved(self):
        original = compute_rtc(PAPER_GBC)
        restored = roundtrip(original)
        for source in range(8):
            for target in range(8):
                assert restored.reaches(source, target) == original.reaches(
                    source, target
                )

    def test_string_vertices(self):
        original = compute_rtc({("a", "b"), ("b", "a"), ("b", "c")})
        restored = roundtrip(original)
        assert restored.expand() == original.expand()

    def test_empty_rtc(self):
        assert roundtrip(compute_rtc(set())).expand() == set()

    @pytest.mark.parametrize("seed", range(4))
    def test_random_rtcs(self, seed):
        import random

        rng = random.Random(seed)
        pairs = {
            (rng.randrange(12), rng.randrange(12))
            for _ in range(rng.randint(1, 30))
        }
        original = compute_rtc(pairs)
        assert roundtrip(original).expand() == original.expand()

    def test_unserialisable_vertices_rejected(self):
        rtc = compute_rtc({((0, 1), (1, 2))})  # tuple vertices
        with pytest.raises(RtcFormatError, match="not JSON-serialisable"):
            rtc_to_dict(rtc)


class TestFiles:
    def test_save_load_file(self, tmp_path, fig1):
        rtc = compute_rtc(eval_rpq(fig1, "b.c"))
        path = tmp_path / "bc.rtc.json"
        save_rtc(rtc, path)
        assert load_rtc(path).expand() == rtc.expand()

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(RtcFormatError, match="invalid JSON"):
            load_rtc(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(RtcFormatError, match="not a repro-rtc"):
            load_rtc(path)

    def test_wrong_version(self, tmp_path):
        payload = rtc_to_dict(compute_rtc({(0, 1)}))
        payload["version"] = 99
        path = tmp_path / "v99.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(RtcFormatError, match="unsupported version"):
            load_rtc(path)

    def test_malformed_payload(self):
        with pytest.raises(RtcFormatError, match="malformed"):
            rtc_from_dict({"format": "repro-rtc", "version": 1})

    def test_inconsistent_ids(self):
        payload = rtc_to_dict(compute_rtc({(0, 1)}))
        payload["closure"]["999"] = []
        with pytest.raises(RtcFormatError, match="disagree"):
            rtc_from_dict(payload)


class TestCachePersistence:
    def test_cache_roundtrip(self, tmp_path, fig1):
        cache = RTCCache()
        from repro.regex.parser import parse

        for r in ("b.c", "c"):
            key = cache.key_for(parse(r))
            cache.store(key, compute_rtc(eval_rpq(fig1, r)))
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path)
        assert len(restored) == 2
        assert restored.mode == "syntactic"
        _key, rtc = restored.lookup(parse("b.c"))
        assert rtc is not None
        assert rtc.expand() == eval_rpq(fig1, "(b.c)+")

    def test_warm_engine_from_cache(self, tmp_path, fig1):
        from repro.core.engines import RTCSharingEngine

        warm_source = RTCSharingEngine(fig1)
        warm_source.evaluate("d.(b.c)+.c")
        path = tmp_path / "warm.json"
        save_cache(warm_source.rtc_cache, path)

        engine = RTCSharingEngine(fig1)
        engine.rtc_cache = load_cache(path)
        result = engine.evaluate("a.(b.c)+")
        assert result == RTCSharingEngine(fig1).evaluate("a.(b.c)+")
        assert engine.rtc_cache.stats.hits >= 1  # served from disk

    def test_cache_file_not_cache(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"format": "repro-rtc"}))
        with pytest.raises(RtcFormatError, match="not an RTC cache"):
            load_cache(path)
