"""Tests for the transitive-closure algorithms (Lemma 3 machinery)."""

import pytest

from repro.graph.builders import digraph_cycle, digraph_path
from repro.graph.digraph import DiGraph
from repro.graph.scc import condense
from repro.graph.transitive_closure import (
    dag_closure_bitsets,
    iter_bits,
    scc_closure,
    tc_bfs,
    tc_nuutila,
    tc_purdom,
    tc_warshall,
    transitive_closure_pairs,
)

ALGORITHMS = [tc_bfs, tc_warshall, tc_purdom, tc_nuutila]

CASES = {
    "empty": [],
    "single_edge": [(0, 1)],
    "two_cycle": [(0, 1), (1, 0)],
    "self_loop": [(0, 0)],
    "path": [(0, 1), (1, 2), (2, 3)],
    "diamond": [(0, 1), (0, 2), (1, 3), (2, 3)],
    "cycle_with_tail": [(0, 1), (1, 2), (2, 0), (2, 3)],
    "two_components": [(0, 1), (2, 3)],
    "paper_gbc": [(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)],
}

EXPECTED = {
    "empty": set(),
    "single_edge": {(0, 1)},
    "two_cycle": {(0, 0), (0, 1), (1, 0), (1, 1)},
    "self_loop": {(0, 0)},
    "path": {(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)},
    "diamond": {(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)},
    "cycle_with_tail": {
        (0, 0), (0, 1), (0, 2), (0, 3),
        (1, 0), (1, 1), (1, 2), (1, 3),
        (2, 0), (2, 1), (2, 2), (2, 3),
    },
    "two_components": {(0, 1), (2, 3)},
    # Example 4 of the paper.
    "paper_gbc": {
        (2, 2), (2, 4), (2, 6), (3, 3), (3, 5),
        (4, 2), (4, 4), (4, 6), (5, 3), (5, 5),
    },
}


class TestClosureAlgorithms:
    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.__name__)
    @pytest.mark.parametrize("case", sorted(CASES), ids=str)
    def test_known_closures(self, algorithm, case):
        graph = DiGraph.from_pairs(CASES[case])
        assert algorithm(graph) == EXPECTED[case]

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.__name__)
    def test_cycle_closure_is_complete(self, algorithm):
        graph = digraph_cycle(6)
        expected = {(i, j) for i in range(6) for j in range(6)}
        assert algorithm(graph) == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.__name__)
    def test_path_excludes_reflexive_pairs(self, algorithm):
        graph = digraph_path(5)
        closure = algorithm(graph)
        assert all(source != target for source, target in closure)
        assert len(closure) == 5 * 6 // 2

    def test_dispatch(self):
        graph = DiGraph.from_pairs(CASES["diamond"])
        for name in ("bfs", "warshall", "purdom", "nuutila"):
            assert transitive_closure_pairs(graph, name) == EXPECTED["diamond"]

    def test_dispatch_unknown(self):
        with pytest.raises(ValueError, match="unknown transitive-closure"):
            transitive_closure_pairs(DiGraph(), "magic")


class TestBitsetHelpers:
    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b1011)) == [0, 1, 3]
        assert list(iter_bits(1 << 70)) == [70]

    def test_dag_closure_bitsets_cyclic_self(self):
        graph = DiGraph.from_pairs([(0, 1), (1, 0), (1, 2)])
        condensation = condense(graph)
        bitsets = dag_closure_bitsets(condensation)
        cyclic_id = condensation.scc_of[0]
        sink_id = condensation.scc_of[2]
        assert bitsets[cyclic_id] & (1 << cyclic_id)  # reaches itself
        assert bitsets[cyclic_id] & (1 << sink_id)
        assert bitsets[sink_id] == 0  # acyclic singleton sink

    def test_scc_closure_matches_bitsets(self):
        graph = DiGraph.from_pairs([(0, 1), (1, 2), (2, 0), (2, 3)])
        condensation = condense(graph)
        bitsets = dag_closure_bitsets(condensation)
        closure = scc_closure(condensation)
        for scc_id, mask in bitsets.items():
            assert closure[scc_id] == frozenset(iter_bits(mask))


class TestCrossAlgorithmAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_agree(self, seed):
        import random

        rng = random.Random(seed)
        size = rng.randint(1, 14)
        edges = {
            (rng.randrange(size), rng.randrange(size))
            for _ in range(rng.randint(0, 3 * size))
        }
        graph = DiGraph.from_pairs(edges)
        for vertex in range(size):
            graph.add_vertex(vertex)
        reference = tc_bfs(graph)
        assert tc_warshall(graph) == reference
        assert tc_purdom(graph) == reference
        assert tc_nuutila(graph) == reference

    def test_against_networkx(self):
        import networkx as nx

        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (1, 4)]
        graph = DiGraph.from_pairs(edges)
        nx_graph = nx.DiGraph(edges)
        expected = set()
        for vertex in nx_graph.nodes:
            for descendant in nx.descendants(nx_graph, vertex):
                expected.add((vertex, descendant))
            # positive-length self-reachability
            if any(
                vertex in nx.descendants(nx_graph, successor) or successor == vertex
                for successor in nx_graph.successors(vertex)
            ):
                expected.add((vertex, vertex))
        assert tc_purdom(graph) == expected
