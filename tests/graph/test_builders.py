"""Tests for the deterministic graph constructors, incl. the Fig. 1 graph."""

import pytest

from repro.graph.builders import (
    digraph_cycle,
    digraph_path,
    labeled_complete,
    labeled_cycle,
    labeled_path,
    layered_graph,
    paper_figure1_graph,
)
from repro.rpq.evaluate import eval_rpq


class TestPaperFigure1:
    def test_shape(self):
        graph = paper_figure1_graph()
        assert graph.num_vertices == 10
        assert sorted(graph.labels()) == ["a", "b", "c", "d", "e", "f"]

    def test_example3_bc_paths(self):
        # The b·c-satisfying paths listed in Example 3.
        graph = paper_figure1_graph()
        assert eval_rpq(graph, "b.c") == {(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)}

    def test_example2_query_result(self):
        graph = paper_figure1_graph()
        assert eval_rpq(graph, "d.(b.c)+.c") == {(7, 5), (7, 3)}


class TestSyntheticBuilders:
    def test_labeled_path(self):
        graph = labeled_path(3, "x")
        assert graph.num_vertices == 4
        assert graph.num_edges == 3
        assert eval_rpq(graph, "x.x.x") == {(0, 3)}

    def test_labeled_path_zero_length(self):
        graph = labeled_path(0)
        assert graph.num_vertices == 1
        assert graph.num_edges == 0

    def test_labeled_cycle(self):
        graph = labeled_cycle(4)
        assert graph.num_edges == 4
        assert (0, 0) in eval_rpq(graph, "a+")

    def test_labeled_cycle_size_one(self):
        graph = labeled_cycle(1)
        assert graph.has_edge(0, "a", 0)

    def test_labeled_cycle_invalid(self):
        with pytest.raises(ValueError):
            labeled_cycle(0)

    def test_labeled_complete(self):
        graph = labeled_complete(3, ("a", "b"))
        assert graph.num_edges == 3 * 2 * 2
        assert not graph.has_edge(0, "a", 0)

    def test_layered_graph(self):
        graph = layered_graph([2, 3, 1], ["a", "b"])
        assert graph.num_vertices == 6
        assert graph.num_edges == 2 * 3 + 3 * 1
        # layer 0 -> 1 uses label a; layer 1 -> 2 uses label b.
        assert eval_rpq(graph, "a.b") == {(0, 5), (1, 5)}

    def test_digraph_path_and_cycle(self):
        assert digraph_path(2).edge_set() == {(0, 1), (1, 2)}
        assert digraph_cycle(3).edge_set() == {(0, 1), (1, 2), (2, 0)}
        with pytest.raises(ValueError):
            digraph_cycle(0)
