"""Tests for the reachability oracles over digraphs."""

import pytest

from repro.graph.builders import digraph_cycle, digraph_path
from repro.graph.digraph import DiGraph
from repro.graph.reachability import OnlineBfsOracle, SccIntervalOracle
from repro.graph.transitive_closure import tc_bfs

ORACLES = [OnlineBfsOracle, SccIntervalOracle]


@pytest.mark.parametrize("oracle_class", ORACLES, ids=lambda c: c.__name__)
class TestOracleSemantics:
    def test_path_reachability(self, oracle_class):
        oracle = oracle_class(digraph_path(4))
        assert oracle.reaches(0, 4)
        assert oracle.reaches(1, 3)
        assert not oracle.reaches(4, 0)
        assert not oracle.reaches(2, 2)  # positive length only

    def test_cycle_self_reachability(self, oracle_class):
        oracle = oracle_class(digraph_cycle(3))
        assert oracle.reaches(0, 0)
        assert oracle.reaches(2, 1)

    def test_self_loop(self, oracle_class):
        oracle = oracle_class(DiGraph.from_pairs([(0, 0), (1, 2)]))
        assert oracle.reaches(0, 0)
        assert not oracle.reaches(1, 1)

    def test_unknown_vertices(self, oracle_class):
        oracle = oracle_class(digraph_path(2))
        assert not oracle.reaches(99, 0)
        assert not oracle.reaches(0, 99)

    def test_matches_closure_on_random_graph(self, oracle_class):
        import random

        rng = random.Random(3)
        edges = {(rng.randrange(12), rng.randrange(12)) for _ in range(30)}
        graph = DiGraph.from_pairs(edges)
        closure = tc_bfs(graph)
        oracle = oracle_class(graph)
        for source in graph.vertices():
            for target in graph.vertices():
                assert oracle.reaches(source, target) == (
                    (source, target) in closure
                )


class TestIndexProperties:
    def test_index_size_counts_scc_pairs(self):
        oracle = SccIntervalOracle(digraph_path(3))
        # Path of 4 vertices: closure pairs at SCC level = 3+2+1 = 6.
        assert oracle.index_size == 6

    def test_index_size_cycle(self):
        oracle = SccIntervalOracle(digraph_cycle(5))
        assert oracle.index_size == 1  # single cyclic SCC reaching itself
