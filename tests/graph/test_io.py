"""Tests for edge-list serialisation."""

import pytest

from repro.errors import GraphFormatError
from repro.graph.io import (
    dump_edge_list,
    format_edge_lines,
    load_edge_list,
    parse_edge_lines,
)
from repro.graph.multigraph import LabeledMultigraph


class TestParsing:
    def test_basic_lines(self):
        triples = list(parse_edge_lines(["0 a 1", "1 b 2"]))
        assert triples == [(0, "a", 1), (1, "b", 2)]

    def test_comments_and_blanks_skipped(self):
        lines = ["# header", "", "   ", "0 a 1", "# trailing"]
        assert list(parse_edge_lines(lines)) == [(0, "a", 1)]

    def test_string_vertices_preserved(self):
        triples = list(parse_edge_lines(["alice knows bob"]))
        assert triples == [("alice", "knows", "bob")]

    def test_mixed_vertex_types(self):
        triples = list(parse_edge_lines(["0 a bob"]))
        assert triples == [(0, "a", "bob")]

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(GraphFormatError, match="line 2"):
            list(parse_edge_lines(["0 a 1", "0 a"]))

    def test_too_many_fields(self):
        with pytest.raises(GraphFormatError):
            list(parse_edge_lines(["0 a 1 extra"]))


class TestRoundtrip:
    def test_dump_and_load(self, tmp_path):
        graph = LabeledMultigraph.from_edges(
            [(0, "a", 1), (1, "b", 2), (2, "a", 0), ("x", "rel", "y")]
        )
        path = tmp_path / "graph.txt"
        dump_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert set(loaded.edges()) == set(graph.edges())

    def test_dump_is_deterministic(self, tmp_path):
        graph = LabeledMultigraph.from_edges([(2, "b", 1), (0, "a", 1)])
        first = tmp_path / "one.txt"
        second = tmp_path / "two.txt"
        dump_edge_list(graph, first)
        dump_edge_list(graph, second)
        assert first.read_text() == second.read_text()

    def test_load_tolerates_duplicate_lines(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 a 1\n0 a 1\n")
        graph = load_edge_list(path)
        assert graph.num_edges == 1


class TestUnserialisableTokens:
    """The dump side refuses tokens the format cannot round-trip."""

    def test_int_lookalike_string_vertex_raises(self, tmp_path):
        # "123" would load back as int 123 (the coercion rule), silently
        # changing vertex identity -- refuse instead.
        graph = LabeledMultigraph.from_edges([("123", "a", "x")])
        with pytest.raises(GraphFormatError, match="looks like an integer"):
            dump_edge_list(graph, tmp_path / "bad.txt")

    def test_signed_int_lookalike_raises(self):
        graph = LabeledMultigraph.from_edges([("x", "a", "-7")])
        with pytest.raises(GraphFormatError, match="looks like an integer"):
            list(format_edge_lines(graph))

    def test_whitespace_vertex_raises(self):
        graph = LabeledMultigraph.from_edges([("a b", "rel", "c")])
        with pytest.raises(GraphFormatError, match="whitespace"):
            list(format_edge_lines(graph))

    def test_whitespace_label_raises(self):
        graph = LabeledMultigraph.from_edges([("a", "two words", "c")])
        with pytest.raises(GraphFormatError, match="whitespace"):
            list(format_edge_lines(graph))

    def test_empty_and_comment_tokens_raise(self):
        for bad_edges in (
            [("", "a", "x")],
            [("x", "", "y")],
            [("#note", "a", "x")],
        ):
            graph = LabeledMultigraph.from_edges(bad_edges)
            with pytest.raises(GraphFormatError):
                list(format_edge_lines(graph))

    def test_exotic_vertex_type_raises(self):
        graph = LabeledMultigraph.from_edges([((1, 2), "a", "y")])
        with pytest.raises(GraphFormatError, match="not\\s+serialisable"):
            list(format_edge_lines(graph))

    def test_bool_vertex_raises(self):
        # bool is an int subclass but str(True) loads back as "True".
        graph = LabeledMultigraph.from_edges([(True, "a", "x")])
        with pytest.raises(GraphFormatError):
            list(format_edge_lines(graph))

    def test_failed_dump_leaves_file_untouched(self, tmp_path):
        path = tmp_path / "keep.txt"
        path.write_text("0 a 1\n")
        graph = LabeledMultigraph.from_edges([("123", "a", "x")])
        with pytest.raises(GraphFormatError):
            dump_edge_list(graph, path)
        assert path.read_text() == "0 a 1\n"

    def test_int_like_labels_are_fine(self, tmp_path):
        # Labels are never coerced: "123" stays the string "123".
        graph = LabeledMultigraph.from_edges([(0, "123", 1)])
        path = tmp_path / "labels.txt"
        dump_edge_list(graph, path)
        assert set(load_edge_list(path).edges()) == {(0, "123", 1)}
