"""Tests for edge-list serialisation."""

import pytest

from repro.errors import GraphFormatError
from repro.graph.io import dump_edge_list, load_edge_list, parse_edge_lines
from repro.graph.multigraph import LabeledMultigraph


class TestParsing:
    def test_basic_lines(self):
        triples = list(parse_edge_lines(["0 a 1", "1 b 2"]))
        assert triples == [(0, "a", 1), (1, "b", 2)]

    def test_comments_and_blanks_skipped(self):
        lines = ["# header", "", "   ", "0 a 1", "# trailing"]
        assert list(parse_edge_lines(lines)) == [(0, "a", 1)]

    def test_string_vertices_preserved(self):
        triples = list(parse_edge_lines(["alice knows bob"]))
        assert triples == [("alice", "knows", "bob")]

    def test_mixed_vertex_types(self):
        triples = list(parse_edge_lines(["0 a bob"]))
        assert triples == [(0, "a", "bob")]

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(GraphFormatError, match="line 2"):
            list(parse_edge_lines(["0 a 1", "0 a"]))

    def test_too_many_fields(self):
        with pytest.raises(GraphFormatError):
            list(parse_edge_lines(["0 a 1 extra"]))


class TestRoundtrip:
    def test_dump_and_load(self, tmp_path):
        graph = LabeledMultigraph.from_edges(
            [(0, "a", 1), (1, "b", 2), (2, "a", 0), ("x", "rel", "y")]
        )
        path = tmp_path / "graph.txt"
        dump_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert set(loaded.edges()) == set(graph.edges())

    def test_dump_is_deterministic(self, tmp_path):
        graph = LabeledMultigraph.from_edges([(2, "b", 1), (0, "a", 1)])
        first = tmp_path / "one.txt"
        second = tmp_path / "two.txt"
        dump_edge_list(graph, first)
        dump_edge_list(graph, second)
        assert first.read_text() == second.read_text()

    def test_load_tolerates_duplicate_lines(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 a 1\n0 a 1\n")
        graph = load_edge_list(path)
        assert graph.num_edges == 1
