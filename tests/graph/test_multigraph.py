"""Unit tests for the edge-labeled multigraph data model (Section II-A)."""

import pytest

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.multigraph import LabeledMultigraph


def build_small() -> LabeledMultigraph:
    return LabeledMultigraph.from_edges(
        [(0, "a", 1), (0, "b", 1), (1, "a", 2), (2, "c", 0)]
    )


class TestConstruction:
    def test_empty_graph(self):
        graph = LabeledMultigraph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert graph.num_labels == 0
        assert list(graph.edges()) == []

    def test_add_edge_creates_vertices(self):
        graph = LabeledMultigraph()
        graph.add_edge(1, "x", 2)
        assert graph.num_vertices == 2
        assert graph.has_vertex(1) and graph.has_vertex(2)

    def test_add_isolated_vertex(self):
        graph = LabeledMultigraph()
        graph.add_vertex(5)
        assert graph.num_vertices == 1
        assert graph.num_edges == 0
        assert 5 in graph

    def test_parallel_edges_with_distinct_labels_allowed(self):
        graph = build_small()
        assert graph.has_edge(0, "a", 1)
        assert graph.has_edge(0, "b", 1)
        assert graph.num_edges == 4

    def test_duplicate_labeled_edge_rejected(self):
        graph = build_small()
        with pytest.raises(GraphError):
            graph.add_edge(0, "a", 1)

    def test_add_edge_if_absent(self):
        graph = build_small()
        assert graph.add_edge_if_absent(0, "a", 1) is False
        assert graph.add_edge_if_absent(0, "c", 1) is True
        assert graph.num_edges == 5

    def test_non_string_label_rejected(self):
        graph = LabeledMultigraph()
        with pytest.raises(GraphError):
            graph.add_edge(0, 7, 1)

    def test_self_loop_allowed(self):
        graph = LabeledMultigraph()
        graph.add_edge(0, "a", 0)
        assert graph.has_edge(0, "a", 0)
        assert graph.num_vertices == 1


class TestAccessors:
    def test_targets_and_sources(self):
        graph = build_small()
        assert graph.targets(0, "a") == frozenset({1})
        assert graph.sources(1, "a") == frozenset({0})
        assert graph.targets(0, "missing") == frozenset()
        assert graph.sources(99, "a") == frozenset()

    def test_edges_with_label(self):
        graph = build_small()
        assert graph.edges_with_label("a") == frozenset({(0, 1), (1, 2)})
        assert graph.edges_with_label("nope") == frozenset()

    def test_label_count(self):
        graph = build_small()
        assert graph.label_count("a") == 2
        assert graph.label_count("b") == 1
        assert graph.label_count("nope") == 0

    def test_out_in_edges(self):
        graph = build_small()
        assert sorted(graph.out_edges(0)) == [("a", 1), ("b", 1)]
        assert sorted(graph.in_edges(1)) == [("a", 0), ("b", 0)]

    def test_out_map_is_label_indexed(self):
        graph = build_small()
        out = graph.out_map(0)
        assert set(out) == {"a", "b"}
        assert out["a"] == {1}
        assert graph.out_map(12345) == {}

    def test_degrees(self):
        graph = build_small()
        assert graph.out_degree(0) == 2
        assert graph.in_degree(0) == 1
        with pytest.raises(VertexNotFoundError):
            graph.out_degree(42)
        with pytest.raises(VertexNotFoundError):
            graph.in_degree(42)

    def test_average_degree_per_label(self):
        graph = build_small()
        # |E| / (|V| * |Sigma|) = 4 / (3 * 3)
        assert graph.average_degree_per_label() == pytest.approx(4 / 9)
        assert LabeledMultigraph().average_degree_per_label() == 0.0

    def test_len_and_contains(self):
        graph = build_small()
        assert len(graph) == 3
        assert 0 in graph and 99 not in graph


class TestDerivedGraphs:
    def test_reverse_flips_edges(self):
        graph = build_small()
        reversed_graph = graph.reverse()
        assert reversed_graph.has_edge(1, "a", 0)
        assert reversed_graph.has_edge(0, "c", 2)
        assert reversed_graph.num_edges == graph.num_edges
        assert reversed_graph.reverse() == graph

    def test_subgraph_keeps_internal_edges_only(self):
        graph = build_small()
        sub = graph.subgraph([0, 1])
        assert sub.num_vertices == 2
        assert set(sub.edges()) == {(0, "a", 1), (0, "b", 1)}

    def test_subgraph_with_unknown_vertex(self):
        graph = build_small()
        sub = graph.subgraph([0, 77])
        assert sub.num_vertices == 1
        assert sub.num_edges == 0

    def test_copy_is_independent(self):
        graph = build_small()
        duplicate = graph.copy()
        assert duplicate == graph
        duplicate.add_edge(5, "z", 6)
        assert duplicate != graph
        assert not graph.has_edge(5, "z", 6)

    def test_equality_against_other_types(self):
        assert LabeledMultigraph().__eq__(42) is NotImplemented


class TestIteration:
    def test_edges_roundtrip(self):
        graph = build_small()
        rebuilt = LabeledMultigraph.from_edges(graph.edges())
        assert rebuilt == graph

    def test_labels_iteration(self):
        graph = build_small()
        assert sorted(graph.labels()) == ["a", "b", "c"]

    def test_vertices_iteration(self):
        graph = build_small()
        assert sorted(graph.vertices()) == [0, 1, 2]
