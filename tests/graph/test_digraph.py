"""Unit tests for the unlabeled simple digraph (reduction target type)."""

import pytest

from repro.errors import VertexNotFoundError
from repro.graph.digraph import DiGraph


def build_diamond() -> DiGraph:
    return DiGraph.from_pairs([(0, 1), (0, 2), (1, 3), (2, 3)])


class TestConstruction:
    def test_empty(self):
        graph = DiGraph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_add_edge_returns_newness(self):
        graph = DiGraph()
        assert graph.add_edge(0, 1) is True
        assert graph.add_edge(0, 1) is False  # simple graph: collapse
        assert graph.num_edges == 1

    def test_add_vertex(self):
        graph = DiGraph()
        graph.add_vertex("x")
        assert "x" in graph
        assert graph.num_edges == 0

    def test_self_loop(self):
        graph = DiGraph.from_pairs([(1, 1)])
        assert graph.has_self_loop(1)
        assert not graph.has_self_loop(2)

    def test_from_pairs_dedupes(self):
        graph = DiGraph.from_pairs([(0, 1), (0, 1), (1, 0)])
        assert graph.num_edges == 2


class TestAccessors:
    def test_successors_predecessors(self):
        graph = build_diamond()
        assert graph.successors(0) == frozenset({1, 2})
        assert graph.predecessors(3) == frozenset({1, 2})
        assert graph.successors(3) == frozenset()
        assert graph.predecessors(0) == frozenset()

    def test_degrees(self):
        graph = build_diamond()
        assert graph.out_degree(0) == 2
        assert graph.in_degree(3) == 2
        with pytest.raises(VertexNotFoundError):
            graph.out_degree(9)
        with pytest.raises(VertexNotFoundError):
            graph.in_degree(9)

    def test_edge_set(self):
        graph = build_diamond()
        assert graph.edge_set() == {(0, 1), (0, 2), (1, 3), (2, 3)}

    def test_has_edge(self):
        graph = build_diamond()
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_len(self):
        assert len(build_diamond()) == 4


class TestDerived:
    def test_reverse(self):
        graph = build_diamond()
        reversed_graph = graph.reverse()
        assert reversed_graph.edge_set() == {(1, 0), (2, 0), (3, 1), (3, 2)}
        assert reversed_graph.reverse() == graph

    def test_reverse_keeps_isolated_vertices(self):
        graph = DiGraph()
        graph.add_vertex(7)
        assert 7 in graph.reverse()

    def test_subgraph(self):
        graph = build_diamond()
        sub = graph.subgraph([0, 1, 3])
        assert sub.edge_set() == {(0, 1), (1, 3)}
        assert sub.num_vertices == 3

    def test_copy_independent(self):
        graph = build_diamond()
        duplicate = graph.copy()
        duplicate.add_edge(3, 0)
        assert not graph.has_edge(3, 0)
        assert graph != duplicate

    def test_equality(self):
        assert build_diamond() == build_diamond()
        assert build_diamond().__eq__("nope") is NotImplemented
