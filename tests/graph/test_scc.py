"""Tests for SCC algorithms and the condensation (vertex-level reduction)."""

import pytest

from repro.graph.builders import digraph_cycle, digraph_path
from repro.graph.digraph import DiGraph
from repro.graph.scc import condense, kosaraju_scc, tarjan_scc


def normalise(components):
    return sorted(tuple(sorted(component)) for component in components)


class TestTarjan:
    def test_empty_graph(self):
        assert tarjan_scc(DiGraph()) == []

    def test_single_vertex(self):
        graph = DiGraph()
        graph.add_vertex(0)
        assert normalise(tarjan_scc(graph)) == [(0,)]

    def test_path_is_all_singletons(self):
        graph = digraph_path(4)
        assert normalise(tarjan_scc(graph)) == [(0,), (1,), (2,), (3,), (4,)]

    def test_cycle_is_one_component(self):
        graph = digraph_cycle(5)
        assert normalise(tarjan_scc(graph)) == [(0, 1, 2, 3, 4)]

    def test_two_cycles_and_bridge(self):
        graph = DiGraph.from_pairs(
            [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]
        )
        assert normalise(tarjan_scc(graph)) == [(0, 1), (2, 3)]

    def test_emission_order_is_reverse_topological(self):
        # Component containing 2,3 is reachable from the one containing 0,1,
        # so Tarjan must emit it first.
        graph = DiGraph.from_pairs([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        components = tarjan_scc(graph)
        assert sorted(components[0]) == [2, 3]
        assert sorted(components[1]) == [0, 1]

    def test_deep_path_no_recursion_limit(self):
        # 50k-vertex path: a recursive Tarjan would overflow.
        graph = digraph_path(50_000)
        assert len(tarjan_scc(graph)) == 50_001

    def test_self_loop_vertex(self):
        graph = DiGraph.from_pairs([(0, 0), (0, 1)])
        assert normalise(tarjan_scc(graph)) == [(0,), (1,)]


class TestKosarajuAgreement:
    @pytest.mark.parametrize(
        "edges",
        [
            [],
            [(0, 1)],
            [(0, 1), (1, 0)],
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)],
            [(0, 0)],
            [(i, (i + 1) % 10) for i in range(10)],
        ],
    )
    def test_same_components_as_tarjan(self, edges):
        graph = DiGraph.from_pairs(edges)
        assert normalise(tarjan_scc(graph)) == normalise(kosaraju_scc(graph))


class TestCondensation:
    def test_two_cycles_condense_to_two_vertices(self):
        graph = DiGraph.from_pairs([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        condensation = condense(graph)
        assert condensation.num_sccs == 2
        # The inter-SCC edge survives; each cyclic SCC gets a self-loop.
        source_id = condensation.scc_of[0]
        target_id = condensation.scc_of[2]
        assert condensation.dag.has_edge(source_id, target_id)
        assert condensation.dag.has_self_loop(source_id)
        assert condensation.dag.has_self_loop(target_id)

    def test_singleton_without_self_loop_is_acyclic(self):
        graph = digraph_path(2)
        condensation = condense(graph)
        assert condensation.num_sccs == 3
        for scc_id in range(3):
            assert not condensation.is_cyclic(scc_id)

    def test_singleton_with_self_loop_is_cyclic(self):
        graph = DiGraph.from_pairs([(0, 0), (0, 1)])
        condensation = condense(graph)
        assert condensation.is_cyclic(condensation.scc_of[0])
        assert not condensation.is_cyclic(condensation.scc_of[1])

    def test_edge_id_order_invariant(self):
        # Every condensation edge (i, j), i != j must satisfy j < i:
        # Tarjan emits reachable components first.
        graph = DiGraph.from_pairs(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (1, 4)]
        )
        condensation = condense(graph)
        for source, target in condensation.dag.edges():
            if source != target:
                assert target < source

    def test_members_cover_all_vertices(self):
        graph = DiGraph.from_pairs([(0, 1), (1, 0), (2, 3)])
        condensation = condense(graph)
        covered = sorted(
            vertex
            for members in condensation.members.values()
            for vertex in members
        )
        assert covered == [0, 1, 2, 3]
        assert set(condensation.scc_of) == {0, 1, 2, 3}

    def test_average_scc_size(self):
        graph = DiGraph.from_pairs([(0, 1), (1, 0), (2, 3)])
        condensation = condense(graph)
        assert condensation.average_scc_size() == pytest.approx(4 / 3)
        assert condense(DiGraph()).average_scc_size() == 0.0

    def test_scc_sizes(self):
        graph = digraph_cycle(4)
        assert condense(graph).scc_sizes() == [4]

    def test_paper_example5(self):
        # G_{b·c} of Fig. 5 condenses to three vertices with two self-loops
        # and one inter-SCC edge (Fig. 6).
        gbc = DiGraph.from_pairs([(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)])
        condensation = condense(gbc)
        assert condensation.num_sccs == 3
        s24 = condensation.scc_of[2]
        s35 = condensation.scc_of[3]
        s6 = condensation.scc_of[6]
        assert condensation.scc_of[4] == s24
        assert condensation.scc_of[5] == s35
        assert condensation.dag.has_self_loop(s24)
        assert condensation.dag.has_self_loop(s35)
        assert not condensation.dag.has_self_loop(s6)
        assert condensation.dag.has_edge(s24, s6)
        assert condensation.dag.num_edges == 3
