"""Tests for the DOT exporters."""

from repro.core.reduction import reduce_graph
from repro.graph.builders import paper_figure1_graph
from repro.graph.digraph import DiGraph
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.dfa import determinize
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse
from repro.viz import (
    condensation_to_dot,
    dfa_to_dot,
    digraph_to_dot,
    multigraph_to_dot,
    nfa_to_dot,
)


class TestMultigraphDot:
    def test_contains_all_edges(self):
        graph = LabeledMultigraph.from_edges([(0, "a", 1), (1, "b", 0)])
        dot = multigraph_to_dot(graph)
        assert dot.startswith("digraph G {")
        assert '"0" -> "1" [label="a"];' in dot
        assert '"1" -> "0" [label="b"];' in dot
        assert dot.endswith("}")

    def test_deterministic(self):
        graph = paper_figure1_graph()
        assert multigraph_to_dot(graph) == multigraph_to_dot(graph)

    def test_quoting(self):
        graph = LabeledMultigraph.from_edges([('we"ird', "l", "x")])
        dot = multigraph_to_dot(graph)
        assert '\\"' in dot

    def test_isolated_vertices_listed(self):
        graph = LabeledMultigraph()
        graph.add_vertex(7)
        assert '"7";' in multigraph_to_dot(graph)


class TestDigraphAndCondensation:
    def test_digraph(self):
        dot = digraph_to_dot(DiGraph.from_pairs([(0, 1)]))
        assert '"0" -> "1";' in dot

    def test_condensation_members_label(self):
        reduction = reduce_graph(paper_figure1_graph(), "b.c")
        dot = condensation_to_dot(reduction.condensation)
        assert "s0" in dot and "{" in dot
        # The SCC {2,4} appears as a member annotation.
        assert "2,4" in dot

    def test_condensation_self_loops_present(self):
        reduction = reduce_graph(paper_figure1_graph(), "b.c")
        condensation = reduction.condensation
        dot = condensation_to_dot(condensation)
        s24 = condensation.scc_of[2]
        assert f"  {s24} -> {s24};" in dot


class TestAutomataDot:
    def test_nfa_marks_accepting(self):
        dot = nfa_to_dot(compile_nfa(parse("a.b")))
        assert "doublecircle" in dot
        assert "(start)" in dot
        assert 'label="a"' in dot

    def test_dfa_transitions(self):
        dfa = determinize(compile_nfa(parse("a|b")))
        dot = dfa_to_dot(dfa)
        assert 'label="a"' in dot and 'label="b"' in dot
        assert "doublecircle" in dot
