"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot run the PEP 517
editable-install path; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` fall back to ``setup.py develop``.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
