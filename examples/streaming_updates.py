"""Streaming edge updates through the GraphDB session facade.

The paper's pipeline is batch: any change to the graph invalidates the
shared RTC.  The library's streaming extension keeps it alive instead:
``db.watch(body)`` attaches an incremental maintainer
(:class:`repro.core.incremental.IncrementalRTC`) and ``db.update(...)``
feeds edge changes to the graph, repairing ``R_G``, ``G_R`` and the RTC
per inserted edge and falling back to a full ``Compute_RTC`` only when
an insertion merges SCCs (removals always rebuild).

This example simulates a growing follower network: edges stream in
through ``db.update``, and after every batch the application asks
reachability questions through ``follows+`` that are answered from the
incrementally maintained RTC.  At the end, the incremental state is
checked against a from-scratch batch evaluation, a few edges are
*removed* (the rebuild path), and the maintenance counters are printed.

The second part replays the same pattern *through a live server*
(:mod:`repro.server`): a producer client streams edge updates over TCP
while a separate consumer client watches the closure body and asks
``reaches``/``query`` questions -- two connections, one shared session,
same incremental maintenance underneath.

Run:  python examples/streaming_updates.py
"""

import random
import time

from repro import GraphDB, LabeledMultigraph
from repro.core import compute_rtc
from repro.rpq import eval_rpq
from repro.server import Client, ServerThread

NUM_PEOPLE = 150
NUM_STREAMED_EDGES = 600
BATCH = 100


def main() -> None:
    rng = random.Random(99)
    graph = LabeledMultigraph()
    people = [f"user{i}" for i in range(NUM_PEOPLE)]
    for person in people:
        graph.add_vertex(person)

    db = GraphDB.open(graph)
    incremental = db.watch("follows")
    print(f"streaming {NUM_STREAMED_EDGES} 'follows' edges into a "
          f"{NUM_PEOPLE}-account network...\n")

    streamed = 0
    while streamed < NUM_STREAMED_EDGES:
        follower = people[rng.randrange(NUM_PEOPLE)]
        followee = people[min(rng.randrange(NUM_PEOPLE), rng.randrange(NUM_PEOPLE))]
        if follower == followee or graph.has_edge(follower, "follows", followee):
            continue
        db.update(add=[(follower, "follows", followee)])
        streamed += 1
        if streamed % BATCH == 0:
            snapshot = incremental.snapshot()
            reachable_of_user0 = sum(
                1 for _ in snapshot.ends_from("user0")
            )
            print(f"after {streamed:4d} edges: "
                  f"|V_R|={snapshot.num_gr_vertices:3d} "
                  f"SCCs={snapshot.num_sccs:3d} "
                  f"RTC pairs={snapshot.num_pairs:5d} "
                  f"user0 reaches {reachable_of_user0:3d} accounts")

    print(f"\nmaintenance profile: {incremental.incremental_updates} "
          f"incremental updates, {incremental.full_rebuilds} full rebuilds")

    # Validate against the batch pipeline.
    started = time.perf_counter()
    batch_pairs = compute_rtc(eval_rpq(graph, "follows")).expand()
    batch_time = time.perf_counter() - started
    assert incremental.plus_pairs() == batch_pairs
    print(f"state equals a from-scratch batch computation "
          f"({len(batch_pairs)} closure pairs; batch recompute took "
          f"{batch_time * 1000:.1f}ms -- the incremental path amortises "
          f"this across the stream)")

    # Removals take the rebuild path but keep the session consistent.
    removable = list(graph.edges())[:3]
    db.update(remove=removable)
    assert incremental.plus_pairs() == compute_rtc(
        eval_rpq(graph, "follows")
    ).expand()
    print(f"after removing {len(removable)} edges: still consistent "
          f"({incremental.full_rebuilds} full rebuilds total)")

    # The maintained RTC answers queries instantly; ordinary RPQs keep
    # flowing through the same session.
    sample = people[:5]
    for source in sample:
        reachable = incremental.reaches(source, "user0")
        print(f"  {source} -follows+-> user0: {reachable}")
    result = db.execute("follows+")
    print(f"db.execute('follows+') after the stream: {len(result)} pairs")

    live_server_demo()


def live_server_demo() -> None:
    """The same streaming pattern over TCP: a writer and a watcher client."""
    print("\n--- live server: update + query from two clients ---")
    rng = random.Random(7)
    people = [f"acct{i}" for i in range(30)]
    graph = LabeledMultigraph()
    for person in people:
        graph.add_vertex(person)

    db = GraphDB.open(graph)
    with ServerThread(db) as handle:
        host, port = handle.address
        print(f"server listening on {host}:{port}")
        with Client(host, port) as producer, Client(host, port) as watcher:
            # The watcher attaches the incremental maintainer server-side.
            watcher.watch("follows")
            streamed = 0
            while streamed < 120:
                follower, followee = rng.sample(people, 2)
                if graph.has_edge(follower, "follows", followee):
                    continue
                producer.update(add=[(follower, "follows", followee)])
                streamed += 1
                if streamed % 40 == 0:
                    reaches = watcher.reaches("follows", people[0], people[1])
                    count = watcher.query("follows+", pairs=False).count
                    print(
                        f"after {streamed:3d} streamed edges: "
                        f"{people[0]} -follows+-> {people[1]}: {reaches}; "
                        f"follows+ has {count} pairs"
                    )
            stats = watcher.stats()
            print(
                f"server served {stats['scheduler']['completed']} queries and "
                f"{stats['scheduler']['updates']} updates over "
                f"{stats['server']['connections']} connections"
            )
    # The served session state survives the server: verify against batch.
    assert db.watchers["follows"].plus_pairs() == compute_rtc(
        eval_rpq(graph, "follows")
    ).expand()
    print("served state equals a from-scratch batch computation")


if __name__ == "__main__":
    main()
