"""Information extraction from linked open data (RDF-style graph).

The paper's third motivating application is "extracting information from
linked open data".  This example loads a small RDF-ish knowledge graph
from an edge-list file (written on the fly to show the IO path), then runs
SPARQL-property-path-style queries:

* transitive subclass reasoning:   ``subclass_of+``
* type inference through classes:  ``type.(subclass_of)*``
* influence chains between people: ``influenced_by+``
* co-location discovery:           ``born_in|works_in``

Shows the paper's batch-unit planner ordering the query mix and the
semantic RTC cache sharing language-equal closure bodies written two ways.

Run:  python examples/linked_data_extraction.py
"""

import tempfile
from pathlib import Path

from repro import GraphDB
from repro.core import plan_order

EDGE_LIST = """\
# A toy slice of a linked-data graph: people, places, classes.
writer subclass_of artist
artist subclass_of person
person subclass_of agent
painter subclass_of artist
poet subclass_of writer
novelist subclass_of writer
orwell type novelist
orwell born_in motihari
orwell works_in london
orwell influenced_by swift
swift type writer
swift born_in dublin
swift influenced_by more
more type writer
more born_in london
woolf type novelist
woolf born_in london
woolf influenced_by orwell
plath type poet
plath influenced_by woolf
picasso type painter
picasso born_in malaga
picasso works_in paris
"""

QUERIES = [
    "subclass_of+",
    "type.(subclass_of)*",
    "influenced_by+",
    "born_in|works_in",
]


def main() -> None:
    # GraphDB.open reads the edge list straight off disk (the IO path).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "linked_data.txt"
        path.write_text(EDGE_LIST)
        db = GraphDB.open(path)
    graph = db.graph
    print(f"knowledge graph: {graph.num_vertices} resources, "
          f"{graph.num_edges} triples, predicates {sorted(graph.labels())}")

    # -- the planner orders the batch (cheap units first, shared grouped) --
    plan = plan_order(graph, QUERIES)
    print("\nplanned execution order:")
    for item in plan:
        print(f"  cost={item.cost:10.0f}  query#{item.query_index}  "
              f"unit={item.unit}")

    answers = dict(zip(QUERIES, db.execute_many(QUERIES)))

    # Transitive typing: every class orwell belongs to.
    orwell_types = sorted(
        target for source, target in answers["type.(subclass_of)*"]
        if source == "orwell"
    )
    print(f"\norwell's inferred types: {orwell_types}")

    # Influence ancestry of plath.
    influences = sorted(
        target for source, target in answers["influenced_by+"]
        if source == "plath"
    )
    print(f"plath's influence ancestry: {influences}")

    # -- semantic cache: two spellings of one closure language -------------
    semantic = GraphDB.open(graph, engine="rtc", cache_mode="semantic")
    semantic.execute_many(
        ["type.(subclass_of.()|subclass_of)+", "type.(subclass_of)+"]
    )
    stats = semantic.engine.rtc_cache.stats
    print(f"\nsemantic cache across equivalent spellings: "
          f"entries={stats.entries} (1 means shared), hits={stats.hits}")


if __name__ == "__main__":
    main()
