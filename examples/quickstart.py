"""Quickstart: evaluate regular path queries through the GraphDB facade.

Walks the paper's running example (Fig. 1) end to end:

1. open a :class:`~repro.db.GraphDB` session over the graph,
2. evaluate the paper's query ``d.(b.c)+.c`` with all three registered
   engines and inspect the rich ``ResultSet``,
3. prepare a query once, look at its ``explain()`` plan, execute it,
4. peek inside the reduction: ``G -> G_{b.c} -> Ḡ_{b.c}`` and the RTC,
5. show what sharing buys when several queries reuse the closure.

Run:  python examples/quickstart.py
"""

from repro import GraphDB, LabeledMultigraph, compute_rtc, edge_level_reduce
from repro.db import available_engines
from repro.graph import paper_figure1_graph


def main() -> None:
    # -- 1. the graph and a session ---------------------------------------
    # paper_figure1_graph() is prebuilt; GraphDB.open also accepts an
    # edge-list path or an iterable of (source, label, target) triples.
    graph: LabeledMultigraph = paper_figure1_graph()
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"alphabet {sorted(graph.labels())}")
    print(f"registered engines: {', '.join(available_engines())}")

    # -- 2. one query, three engines ---------------------------------
    query = "d.(b.c)+.c"
    for engine_name in ("no", "full", "rtc"):
        with GraphDB.open(graph, engine=engine_name) as db:
            result = db.execute(query)
            print(f"{engine_name:>4}: {query} -> {result.sorted_pairs()} "
                  f"({result.total_time * 1000:.2f}ms, "
                  f"shared {result.shared_pairs} pairs)")

    # -- 3. prepare once, explain, execute --------------------------------
    db = GraphDB.open(graph, engine="rtc")
    prepared = db.prepare(query)
    print(f"\nprepared: {prepared!r}")
    print(prepared.explain().describe())
    result = prepared.execute()
    print(f"as JSON: {result.to_json()}")

    # -- 4. inside the reduction ------------------------------------------
    reduced = edge_level_reduce(graph, "b.c")
    print(f"\nedge-level reduction G_(b.c): {reduced.num_vertices} vertices, "
          f"{reduced.num_edges} edges  (paper Fig. 5)")
    rtc = compute_rtc(reduced)
    print(f"vertex-level reduction: {rtc.num_sccs} SCC vertices (paper Fig. 6)")
    print(f"RTC = TC(Ḡ_R): {rtc.num_pairs} pairs vs "
          f"{rtc.num_expanded_pairs} pairs in the full closure R+_G")
    print(f"Theorem 1 expansion: {sorted(rtc.expand())}")

    # -- 5. sharing across queries -----------------------------------------
    db.execute_many(["a.(b.c)+", "(b.c)+.c"])   # same session: caches shared
    stats = db.engine.rtc_cache.stats
    print(f"\nafter 3 queries sharing (b.c)+: cache entries={stats.entries}, "
          f"hits={stats.hits}, misses={stats.misses}")
    print(f"session stats: {db.stats()}")


if __name__ == "__main__":
    main()
