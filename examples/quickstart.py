"""Quickstart: evaluate regular path queries with the RTC-sharing engine.

Walks the paper's running example (Fig. 1) end to end:

1. build the edge-labeled multigraph,
2. evaluate the paper's query ``d.(b.c)+.c`` with all three engines,
3. peek inside the reduction: ``G -> G_{b.c} -> Ḡ_{b.c}`` and the RTC,
4. show what sharing buys when several queries reuse the closure.

Run:  python examples/quickstart.py
"""

from repro import (
    FullSharingEngine,
    LabeledMultigraph,
    NoSharingEngine,
    RTCSharingEngine,
    compute_rtc,
    edge_level_reduce,
)
from repro.graph import paper_figure1_graph


def main() -> None:
    # -- 1. the graph ----------------------------------------------------
    # paper_figure1_graph() is prebuilt; this is what it contains:
    graph: LabeledMultigraph = paper_figure1_graph()
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"alphabet {sorted(graph.labels())}")

    # -- 2. one query, three engines ---------------------------------
    query = "d.(b.c)+.c"
    for engine_class in (NoSharingEngine, FullSharingEngine, RTCSharingEngine):
        engine = engine_class(graph)
        result = engine.evaluate(query)
        print(f"{engine.name:>4}: {query} -> {sorted(result)}")

    # -- 3. inside the reduction ------------------------------------------
    reduced = edge_level_reduce(graph, "b.c")
    print(f"\nedge-level reduction G_(b.c): {reduced.num_vertices} vertices, "
          f"{reduced.num_edges} edges  (paper Fig. 5)")
    rtc = compute_rtc(reduced)
    print(f"vertex-level reduction: {rtc.num_sccs} SCC vertices (paper Fig. 6)")
    print(f"RTC = TC(Ḡ_R): {rtc.num_pairs} pairs vs "
          f"{rtc.num_expanded_pairs} pairs in the full closure R+_G")
    print(f"Theorem 1 expansion: {sorted(rtc.expand())}")

    # -- 4. sharing across queries -----------------------------------------
    engine = RTCSharingEngine(graph)
    for shared_query in ("d.(b.c)+.c", "a.(b.c)+", "(b.c)+.c"):
        engine.evaluate(shared_query)
    stats = engine.rtc_cache.stats
    print(f"\nafter 3 queries sharing (b.c)+: cache entries={stats.entries}, "
          f"hits={stats.hits}, misses={stats.misses}")
    print(f"shared data held: {engine.shared_data_size()} RTC pairs")


if __name__ == "__main__":
    main()
