"""Signal-path detection in a protein interaction network.

The paper's introduction motivates RPQs with "signal path detection in
protein networks".  This example models a small signalling network whose
edges are labeled with interaction types (``activates``, ``inhibits``,
``binds``, ``phosphorylates``) and asks classic pathway questions:

* activation cascades:        ``activates+``
* signal relay with binding:  ``binds.(activates)+``
* ultimate inhibition target: ``activates*.inhibits``
* phospho-relay:              ``(phosphorylates.activates)+``

It also demonstrates the relational-algebra view: the batch unit
``binds.(activates)+.inhibits`` is evaluated both by Algorithm 2 and by
the paper's Eq. (6)-(10) expression, and the two results are compared.

Run:  python examples/protein_signaling.py
"""

import random

from repro import GraphDB, LabeledMultigraph, compute_rtc, edge_level_reduce
from repro.relalg import batch_unit_expression
from repro.rpq import eval_rpq

INTERACTIONS = ("activates", "inhibits", "binds", "phosphorylates")


def build_network(seed: int = 21) -> LabeledMultigraph:
    """A layered kinase cascade with feedback loops and side complexes."""
    rng = random.Random(seed)
    graph = LabeledMultigraph()
    proteins = [f"P{i:03d}" for i in range(160)]
    for protein in proteins:
        graph.add_vertex(protein)

    # Forward cascade: activation flows to higher indices; feedback loops
    # close cycles so activation SCCs are non-trivial.
    for index, protein in enumerate(proteins[:-1]):
        for _ in range(rng.randint(1, 3)):
            target = proteins[min(index + rng.randint(1, 8), len(proteins) - 1)]
            if target != protein:
                graph.add_edge_if_absent(protein, "activates", target)
        if rng.random() < 0.25 and index > 5:
            back = proteins[index - rng.randint(1, 5)]
            graph.add_edge_if_absent(protein, "activates", back)

    for _ in range(80):
        a, b = rng.sample(proteins, 2)
        graph.add_edge_if_absent(a, "binds", b)
    for _ in range(60):
        a, b = rng.sample(proteins, 2)
        graph.add_edge_if_absent(a, "inhibits", b)
    for _ in range(70):
        a, b = rng.sample(proteins, 2)
        graph.add_edge_if_absent(a, "phosphorylates", b)
    return graph


def main() -> None:
    graph = build_network()
    print(f"protein network: {graph.num_vertices} proteins, "
          f"{graph.num_edges} interactions")

    db = GraphDB.open(graph, engine="rtc", collect_counters=True)
    queries = {
        "activation cascades": "activates+",
        "relay after binding": "binds.(activates)+",
        "ultimate inhibition": "activates*.inhibits",
        "phospho-relay": "(phosphorylates.activates)+",
    }
    for description, query in queries.items():
        result = db.execute(query)
        print(f"  {description:<22} {query:<32} -> {len(result):5d} pairs "
              f"({result.total_time * 1000:6.1f}ms)")

    stats = db.engine.rtc_cache.stats
    print(f"\nRTC cache: {stats.entries} entries, hit rate "
          f"{stats.hit_rate:.0%} across the query batch")

    # -- the relational-algebra view of one batch unit --------------------
    pre_pairs = eval_rpq(graph, "binds")
    post_pairs = eval_rpq(graph, "inhibits")
    rtc = compute_rtc(edge_level_reduce(graph, "activates"))
    expression = batch_unit_expression(pre_pairs, rtc, post_pairs, "+")
    declarative = expression.evaluate().to_pairs()
    imperative = db.execute("binds.(activates)+.inhibits")
    assert imperative == declarative   # ResultSet vs plain pair set
    print(f"\nEq.(6)-(10) expression and Algorithm 2 agree: "
          f"{len(imperative)} pairs for binds.(activates)+.inhibits")
    print("expression:", expression.to_algebra()[:100], "...")

    # A concrete biological question: pick a protein that actually starts
    # such a pathway and list what its signal eventually inhibits.
    source = min(source for source, _target in imperative)
    targets = sorted(
        target for start, target in imperative if start == source
    )[:8]
    print(f"\nproteins inhibited downstream of {source} "
          f"(via binding+cascade): {targets}")


if __name__ == "__main__":
    main()
