"""Friend recommendation over a social network with shared closures.

The paper's introduction motivates RPQs with "recommending friends in
social networks".  This example builds a synthetic social graph with
``follows``, ``blocks`` and ``member_of`` edges and runs a *batch* of
recommendation queries that share the expensive ``follows+`` closure:

* reachable accounts:       ``follows+``
* friend-of-friend reach:   ``follows.(follows)+``
* community suggestion:     ``follows+.member_of``
* moderation view:          ``follows+.blocks``

Evaluating the batch with all three engines shows the sharing effect the
paper measures in Experiment 2: NoSharing re-walks the closure per query,
RTCSharing computes one reduced transitive closure and reuses it.

Run:  python examples/social_recommendation.py
"""

import random
import time

from repro import GraphDB, LabeledMultigraph

NUM_PEOPLE = 400
NUM_GROUPS = 25
FOLLOW_EDGES = 1600
BLOCK_EDGES = 120
MEMBERSHIPS = 500

QUERIES = [
    "follows+",
    "follows.(follows)+",
    "follows+.member_of",
    "follows+.blocks",
]


def build_social_graph(seed: int = 7) -> LabeledMultigraph:
    """A skewed follower graph plus group memberships and blocks.

    Preferential attachment-ish skew: earlier accounts attract more
    followers, giving the large SCCs that make the vertex-level reduction
    bite (the paper's high-degree regime).
    """
    rng = random.Random(seed)
    graph = LabeledMultigraph()
    people = [f"user{i}" for i in range(NUM_PEOPLE)]
    groups = [f"group{i}" for i in range(NUM_GROUPS)]
    for person in people:
        graph.add_vertex(person)

    def popular_index() -> int:
        return min(rng.randrange(NUM_PEOPLE), rng.randrange(NUM_PEOPLE))

    placed = 0
    while placed < FOLLOW_EDGES:
        follower = people[rng.randrange(NUM_PEOPLE)]
        followee = people[popular_index()]
        if follower != followee and graph.add_edge_if_absent(
            follower, "follows", followee
        ):
            placed += 1
    placed = 0
    while placed < BLOCK_EDGES:
        blocker = people[rng.randrange(NUM_PEOPLE)]
        blocked = people[rng.randrange(NUM_PEOPLE)]
        if blocker != blocked and graph.add_edge_if_absent(
            blocker, "blocks", blocked
        ):
            placed += 1
    placed = 0
    while placed < MEMBERSHIPS:
        member = people[rng.randrange(NUM_PEOPLE)]
        group = groups[rng.randrange(NUM_GROUPS)]
        if graph.add_edge_if_absent(member, "member_of", group):
            placed += 1
    return graph


def main() -> None:
    graph = build_social_graph()
    print(f"social graph: {graph.num_vertices} vertices, {graph.num_edges} "
          f"edges, degree/label = {graph.average_degree_per_label():.2f}")

    results = {}
    for engine_name in ("no", "full", "rtc"):
        with GraphDB.open(graph, engine=engine_name) as db:
            started = time.perf_counter()
            answers = db.execute_many(QUERIES)
            elapsed = time.perf_counter() - started
            results[engine_name] = answers
            shared = db.engine.shared_data_size()
            print(f"{engine_name:>4}: batch of {len(QUERIES)} queries in "
                  f"{elapsed:.3f}s, shared data = {shared} pairs")

    # ResultSet equality compares pair sets, engine by engine.
    assert results["no"] == results["full"] == results["rtc"]

    # A concrete recommendation: groups reachable through the follow graph
    # that user0 is not already a member of.
    db = GraphDB.open(graph, engine="rtc")
    reachable_groups = {
        target
        for source, target in db.execute("follows+.member_of")
        if source == "user0"
    }
    own_groups = {target for _label, target in graph.out_edges("user0")
                  if _label == "member_of"}
    suggestions = sorted(reachable_groups - own_groups)[:5]
    print(f"\ngroup suggestions for user0: {suggestions}")

    # The RTC doubles as a reachability index: can user0 reach user1?
    print(f"user0 reaches user1 via follows+: "
          f"{db.engine.reaches('follows', 'user0', 'user1')}")


if __name__ == "__main__":
    main()
